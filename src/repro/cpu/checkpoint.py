"""Functional warm-state checkpoints for O(interval) fast-forward.

Warmed fast-forward (and SMARTS' whole-run functional warming) spends
time proportional to the warm-start position X: every run walks the
trace prefix ``[0, X)`` through the cache/TLB/predictor warm paths.
Across a sweep the same prefixes are warmed again and again -- per
run-length point, per configuration, per worker.

A *checkpoint* snapshots the complete functional-warming state -- the
cache hierarchy, TLBs, branch predictor, BTB, return-address stack and
the cumulative warming event counts -- every ``interval`` instructions
along the prefix.  A later run resumes from the nearest checkpoint at
or below its warm-start and warms only the remainder, so prefix
warming costs O(interval) instead of O(X).  Snapshots are *canonical*
(backend-independent content, not object dumps): a checkpoint written
under the numba backend restores bit-identically under the python one
and vice versa.

Checkpoints are keyed by the trace identity (benchmark, input-set
content, seed, scale, generator epoch) plus the *geometry fingerprint*
of the machine -- sizes, associativities, block sizes, predictor
shape.  Latency parameters are deliberately excluded: warming never
computes latency, so a latency sweep shares one checkpoint chain.

On-disk layout (one JSON file per checkpoint)::

    <root>/<key[:2]>/<key>-<position>.json

Writes go through a temp file and an atomic ``os.replace``; an
existing file is never rewritten (same key + position => same bytes by
construction).  Corrupt or unreadable files are skipped, never
trusted.

Activation mirrors the trace store: explicit :func:`activate` wins,
else ``$REPRO_CHECKPOINT_DIR`` (+ ``$REPRO_CHECKPOINT_INSTRUCTIONS``
for the interval) exported by the engine so pool workers inherit it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Bump when the snapshot content or file layout changes.
CHECKPOINT_VERSION = 1

#: Engine-exported checkpoint root; workers resolve their store from this.
CHECKPOINT_DIR_ENV_VAR = "REPRO_CHECKPOINT_DIR"

#: Engine-exported checkpoint spacing in *instructions* (already scaled).
CHECKPOINT_INTERVAL_ENV_VAR = "REPRO_CHECKPOINT_INSTRUCTIONS"

#: Default checkpoint spacing in paper-M instructions (the engine
#: converts to instructions at the active scale).
DEFAULT_INTERVAL_M = 500.0

#: The Machine attributes that make up the functional-warming state,
#: in snapshot order.
_STRUCTURES = (
    "memory",
    "l2",
    "il1",
    "dl1",
    "itlb",
    "dtlb",
    "predictor",
    "btb",
    "ras",
)


# -- snapshots ----------------------------------------------------------------


def snapshot_machine(machine) -> Dict[str, dict]:
    """Canonical warm-state snapshot of every structure on ``machine``."""
    return {name: getattr(machine, name).warm_state() for name in _STRUCTURES}


def restore_machine(machine, state: Dict[str, dict]) -> None:
    """Restore a :func:`snapshot_machine` snapshot onto ``machine``.

    The machine must have the same geometry the snapshot was taken
    under (enforced per-structure); its backend may differ.
    """
    for name in _STRUCTURES:
        getattr(machine, name).restore_warm_state(state[name])


# -- keys ---------------------------------------------------------------------


def geometry_fingerprint(config, enhancements) -> Dict[str, object]:
    """Every config field the warm state depends on.

    Latencies (hit, miss, walk, memory) are excluded on purpose:
    warming updates state without computing latency, so configurations
    differing only in latency share checkpoints.
    """
    return {
        "il1": [config.il1_size_kb, config.il1_assoc, config.il1_block],
        "dl1": [config.dl1_size_kb, config.dl1_assoc, config.dl1_block],
        "l2": [config.l2_size_kb, config.l2_assoc, config.l2_block],
        "itlb_entries": config.itlb_entries,
        "dtlb_entries": config.dtlb_entries,
        "branch_predictor": config.branch_predictor,
        "bht_entries": config.bht_entries,
        "btb_entries": config.btb_entries,
        "btb_assoc": config.btb_assoc,
        "ras_entries": config.ras_entries,
        "next_line_prefetch": bool(enhancements.next_line_prefetch),
    }


def state_key(workload, scale, config, enhancements) -> str:
    """Content key for one ``(trace identity, geometry)`` checkpoint chain."""
    from repro.workloads.generator import TRACE_EPOCH

    document = {
        "version": CHECKPOINT_VERSION,
        "epoch": TRACE_EPOCH,
        "benchmark": workload.benchmark,
        "input_set": dataclasses.asdict(workload.input_set),
        "seed": workload.seed,
        "scale": scale.instructions_per_m,
        "geometry": geometry_fingerprint(config, enhancements),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- the store ----------------------------------------------------------------


class CheckpointStore:
    """Directory of warm-state checkpoints spaced ``interval`` apart."""

    def __init__(self, root: os.PathLike, interval: int) -> None:
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.root = Path(root)
        self.interval = int(interval)

    def path_for(self, key: str, position: int) -> Path:
        return self.root / key[:2] / f"{key}-{position}.json"

    def nearest(
        self, key: str, position: int
    ) -> Optional[Tuple[int, Dict[str, dict], Dict[str, int]]]:
        """The stored checkpoint nearest at-or-below ``position``.

        Returns ``(checkpoint_position, machine_state, warming_stats)``
        or ``None``.  Unreadable files are skipped (the next-lower
        checkpoint is tried), never trusted.
        """
        directory = self.root / key[:2]
        prefix = f"{key}-"
        candidates = []
        try:
            for entry in os.listdir(directory):
                if not (entry.startswith(prefix) and entry.endswith(".json")):
                    continue
                try:
                    at = int(entry[len(prefix) : -len(".json")])
                except ValueError:
                    continue
                if 0 < at <= position:
                    candidates.append(at)
        except OSError:
            return None
        for at in sorted(candidates, reverse=True):
            try:
                with open(self.path_for(key, at), "r", encoding="utf-8") as handle:
                    document = json.load(handle)
                if document["version"] != CHECKPOINT_VERSION:
                    continue
                if document["position"] != at:
                    continue
                return at, document["state"], document["stats"]
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return None

    def save(
        self,
        key: str,
        position: int,
        state: Dict[str, dict],
        stats: Dict[str, int],
    ) -> Optional[Path]:
        """Persist a checkpoint (atomic; no-op if it already exists).

        ``stats`` is the *cumulative* warming event count from trace
        position 0, so a resumed run reports bit-identical statistics.
        """
        path = self.path_for(key, position)
        if path.exists():
            return path
        document = {
            "version": CHECKPOINT_VERSION,
            "position": int(position),
            "stats": dict(stats),
            "state": state,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
        except OSError:
            return None
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


# -- activation (explicit override > environment > inactive) ------------------

_ACTIVE: Optional[CheckpointStore] = None
_ENV_CACHE: tuple = (None, None)  # ((root, interval), CheckpointStore)


def activate(store: Optional[CheckpointStore]) -> None:
    """Install (or, with None, remove) an explicit process-wide store."""
    global _ACTIVE
    _ACTIVE = store


def active_store() -> Optional[CheckpointStore]:
    """The store in effect: explicit activation, else the environment."""
    global _ENV_CACHE
    if _ACTIVE is not None:
        return _ACTIVE
    root = os.environ.get(CHECKPOINT_DIR_ENV_VAR)
    if not root:
        return None
    try:
        interval = int(os.environ.get(CHECKPOINT_INTERVAL_ENV_VAR, "0"))
    except ValueError:
        return None
    if interval <= 0:
        return None
    signature = (root, interval)
    if _ENV_CACHE[0] != signature:
        _ENV_CACHE = (signature, CheckpointStore(Path(root), interval))
    return _ENV_CACHE[1]


# -- counters -----------------------------------------------------------------

_COUNTERS = {
    "checkpoint_hits": 0,
    "checkpoint_misses": 0,
    "instructions_skipped": 0,
}


def record_hit(instructions_skipped: int) -> None:
    _COUNTERS["checkpoint_hits"] += 1
    _COUNTERS["instructions_skipped"] += int(instructions_skipped)


def record_miss() -> None:
    _COUNTERS["checkpoint_misses"] += 1


def consume_counters() -> Dict[str, int]:
    """Drain (return and reset) the accumulated checkpoint counters."""
    drained = dict(_COUNTERS)
    for name in _COUNTERS:
        _COUNTERS[name] = 0
    return drained
