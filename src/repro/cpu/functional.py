"""Functional simulation: fast-forwarding and functional warming.

Fast-forwarding skips a region entirely (architectural state lives in
the trace, so skipping costs nothing and leaves microarchitectural
state cold -- exactly the semantics of ``FF X`` in the paper).

Functional *warming* (SMARTS-style) walks a region updating only the
long-history structures -- caches, TLBs, branch predictor, BTB, RAS --
without computing any timing.  It is several times faster than detailed
simulation, which is what gives SMARTS its speed advantage.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cpu import checkpoint
from repro.cpu.machine import Machine
from repro.obs import phases as obs_phases
from repro.isa.instructions import OpClass
from repro.isa.trace import (
    FLAG_CALL,
    FLAG_COND_BRANCH,
    FLAG_RETURN,
    FLAG_TAKEN,
    FLAG_UNCOND,
    Trace,
)

_CHUNK = 1 << 16

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

_FLAG_ANY_BRANCH = FLAG_COND_BRANCH | FLAG_CALL | FLAG_RETURN | FLAG_UNCOND


@dataclass
class WarmingStats:
    """Event counts observed while functionally warming a region.

    SMARTS reports microarchitectural *rate* statistics (branch
    accuracy, cache hit rates) from functional warming, which observes
    every access -- the tiny detailed samples alone would make those
    rates quantization noise.
    """

    instructions: int = 0
    branches: int = 0
    mispredictions: int = 0
    loads: int = 0
    stores: int = 0

    def merge(self, other: "WarmingStats") -> "WarmingStats":
        """Accumulate ``other`` into this instance (and return it)."""
        self.instructions += other.instructions
        self.branches += other.branches
        self.mispredictions += other.mispredictions
        self.loads += other.loads
        self.stores += other.stores
        return self


def warm_prefix(
    machine: Machine,
    trace: Trace,
    end: int,
    checkpoint_key: "str | None" = None,
) -> WarmingStats:
    """Warm ``trace[0, end)`` on a *cold* machine, checkpoint-assisted.

    Without an active checkpoint store (or a key) this is exactly
    ``run_functional_warming(machine, trace, 0, end)``.  With one, the
    nearest stored checkpoint at-or-below ``end`` is restored and only
    the remainder is warmed -- and fresh checkpoints are dropped at
    every ``interval`` boundary crossed on the way, so the next run
    (any backend, any latency variant) starts even closer.  The warmed
    state and the returned event counts are bit-identical to the full
    replay: snapshots are canonical and cumulative counts ride along
    with each checkpoint.
    """
    store = checkpoint.active_store()
    if store is None or checkpoint_key is None or end <= 0:
        return run_functional_warming(machine, trace, 0, max(0, end))

    position = 0
    stats = WarmingStats()
    with obs_phases.measured("checkpoint_restore"):
        found = store.nearest(checkpoint_key, end)
        if found is not None:
            position, state, saved = found
            checkpoint.restore_machine(machine, state)
            stats = WarmingStats(**saved)
            checkpoint.record_hit(position)
        else:
            checkpoint.record_miss()

    interval = store.interval
    while position < end:
        boundary = (position // interval + 1) * interval
        stop = min(end, boundary)
        stats.merge(run_functional_warming(machine, trace, position, stop))
        position = stop
        if position == boundary:
            with obs_phases.measured("checkpoint_save"):
                store.save(
                    checkpoint_key,
                    position,
                    checkpoint.snapshot_machine(machine),
                    asdict(stats),
                )
    return stats


def run_functional_warming(
    machine: Machine, trace: Trace, start: int, end: int
) -> WarmingStats:
    """Warm caches/TLBs/predictor over ``trace[start:end)``.

    Dispatches to the machine's simulation backend (all backends
    produce identical warmed state and counts); returns the event
    counts observed while warming.
    """
    if end > len(trace):
        raise ValueError(f"region [{start}, {end}) exceeds trace length {len(trace)}")
    with obs_phases.measured(
        "warming",
        instructions=max(0, end - start),
        backend=machine.backend.name,
    ):
        return machine.backend.run_warming(machine, trace, start, end)


def _python_warming(
    machine: Machine, trace: Trace, start: int, end: int
) -> WarmingStats:
    """The reference per-instruction warming loop."""
    il1_warm = machine.il1.warm
    dl1_warm = machine.dl1.warm
    itlb_warm = machine.itlb.warm
    dtlb_warm = machine.dtlb.warm
    predict_update = machine.predictor.predict_update
    btb_lookup = machine.btb.lookup_update
    ras_push = machine.ras.push
    ras_pop = machine.ras.pop

    il1_block_shift = machine.config.il1_block.bit_length() - 1
    last_block = -1
    last_page = -1

    branches = 0
    mispredictions = 0
    loads = 0
    stores = 0

    for chunk_start in range(start, end, _CHUNK):
        chunk_end = min(chunk_start + _CHUNK, end)
        (op_l, _dst, _s1, _s2, pc_l, _blk, addr_l, fl_l, tg_l) = trace.column_lists(
            chunk_start, chunk_end
        )
        for k in range(chunk_end - chunk_start):
            pc = pc_l[k]
            block = pc >> il1_block_shift
            if block != last_block:
                last_block = block
                il1_warm(pc)
                page = pc >> 12
                if page != last_page:
                    last_page = page
                    itlb_warm(pc)
            opc = op_l[k]
            if opc == _LOAD or opc == _STORE:
                if opc == _LOAD:
                    loads += 1
                else:
                    stores += 1
                addr = addr_l[k]
                dtlb_warm(addr)
                dl1_warm(addr)
                continue
            flags = fl_l[k]
            if flags & _FLAG_ANY_BRANCH:
                branches += 1
                if flags & FLAG_COND_BRANCH:
                    taken = bool(flags & FLAG_TAKEN)
                    correct = predict_update(pc, taken)
                    if correct and taken:
                        correct = btb_lookup(pc, tg_l[k])
                elif flags & FLAG_CALL:
                    ras_push()
                    correct = btb_lookup(pc, tg_l[k])
                elif flags & FLAG_RETURN:
                    correct = ras_pop()
                else:
                    correct = btb_lookup(pc, tg_l[k])
                if not correct:
                    mispredictions += 1
    return WarmingStats(
        instructions=max(0, end - start),
        branches=branches,
        mispredictions=mispredictions,
        loads=loads,
        stores=stores,
    )
