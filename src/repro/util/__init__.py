"""Shared utilities: deterministic RNG streams and vector math."""

from repro.util.rng import child_rng, stream_seed
from repro.util.vectors import (
    euclidean_distance,
    manhattan_distance,
    normalize_vector,
    rank_vector,
)

__all__ = [
    "child_rng",
    "stream_seed",
    "euclidean_distance",
    "manhattan_distance",
    "normalize_vector",
    "rank_vector",
]
