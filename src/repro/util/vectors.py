"""Small vector-math helpers used by the characterization methods."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean (L2) distance between two equal-length vectors."""
    va = np.asarray(a, dtype=float)
    vb = np.asarray(b, dtype=float)
    if va.shape != vb.shape:
        raise ValueError(f"shape mismatch: {va.shape} vs {vb.shape}")
    return float(np.sqrt(np.sum((va - vb) ** 2)))


def manhattan_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Manhattan (L1) distance between two equal-length vectors."""
    va = np.asarray(a, dtype=float)
    vb = np.asarray(b, dtype=float)
    if va.shape != vb.shape:
        raise ValueError(f"shape mismatch: {va.shape} vs {vb.shape}")
    return float(np.sum(np.abs(va - vb)))


def normalize_vector(values: Sequence[float], reference: Sequence[float]) -> np.ndarray:
    """Normalize ``values`` element-wise by ``reference``.

    Used by the architectural-level characterization to allow
    cross-metric comparison: each metric is expressed relative to the
    reference input set's value.  Zero reference entries normalize to
    the raw value (they carry no scale information).
    """
    v = np.asarray(values, dtype=float)
    r = np.asarray(reference, dtype=float)
    if v.shape != r.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {r.shape}")
    out = np.empty_like(v)
    nonzero = r != 0
    out[nonzero] = v[nonzero] / r[nonzero]
    out[~nonzero] = v[~nonzero]
    return out


def rank_vector(magnitudes: Sequence[float]) -> list[int]:
    """Rank values by descending magnitude (1 = largest magnitude).

    Ties are broken by original index so the result is a permutation of
    ``1..n``, matching the paper's rank vectorization of
    Plackett-Burman effect magnitudes.
    """
    mags = [abs(float(m)) for m in magnitudes]
    order = sorted(range(len(mags)), key=lambda i: (-mags[i], i))
    ranks = [0] * len(mags)
    for rank, index in enumerate(order, start=1):
        ranks[index] = rank
    return ranks
