"""Deterministic random-number streams.

Every stochastic element of the reproduction (trace generation,
SimPoint's k-means seeding, workload footprints) draws from a named
stream derived from a root seed, so results are reproducible and
independent streams do not perturb one another when code is reordered.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stream_seed(root_seed: int, *names: object) -> int:
    """Derive a 63-bit seed for the stream identified by ``names``.

    The derivation hashes the root seed together with the stream name
    parts, so each ``(root_seed, names)`` pair gets a stable,
    well-separated seed regardless of call order.
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode())
    for name in names:
        digest.update(b"\x1f")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "little") & (2**63 - 1)


def child_rng(root_seed: int, *names: object) -> np.random.Generator:
    """A NumPy generator seeded for the named stream."""
    return np.random.default_rng(stream_seed(root_seed, *names))
