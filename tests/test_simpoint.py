"""Tests for the SimPoint technique end-to-end."""

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.techniques.reference import ReferenceTechnique
from repro.techniques.simpoint import SimPointTechnique

from tests.conftest import TEST_SCALE, make_micro_workload

CONFIG = ARCH_CONFIGS[0]


@pytest.fixture(scope="module")
def workload():
    return make_micro_workload(length_m=800, seed=21)


class TestSelection:
    def test_weights_sum_to_one(self, workload):
        technique = SimPointTechnique(interval_m=20, max_k=10)
        selection = technique.select(workload, TEST_SCALE)
        assert sum(selection.weights) == pytest.approx(1.0)

    def test_single_forces_k1(self, workload):
        technique = SimPointTechnique(interval_m=100, max_k=1)
        selection = technique.select(workload, TEST_SCALE)
        assert selection.k == 1
        assert len(selection.intervals) == 1

    def test_multiple_detects_phases(self, workload):
        # The micro workload has two phases: clustering should find
        # more than one cluster with small intervals.
        technique = SimPointTechnique(interval_m=20, max_k=10)
        selection = technique.select(workload, TEST_SCALE)
        assert selection.k >= 2

    def test_regions_within_trace(self, workload):
        technique = SimPointTechnique(interval_m=20, max_k=10)
        selection = technique.select(workload, TEST_SCALE)
        trace_length = len(workload.trace(TEST_SCALE))
        for start, end in selection.regions(trace_length):
            assert 0 <= start < end <= trace_length

    def test_selection_deterministic(self, workload):
        technique = SimPointTechnique(interval_m=20, max_k=10)
        a = technique.select(workload, TEST_SCALE)
        b = technique.select(workload, TEST_SCALE)
        assert a.intervals == b.intervals
        assert a.weights == b.weights

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimPointTechnique(interval_m=0, max_k=10)
        with pytest.raises(ValueError):
            SimPointTechnique(interval_m=10, max_k=0)


class TestRun:
    def test_estimates_reference_cpi(self, workload):
        reference = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)
        technique = SimPointTechnique(interval_m=100, max_k=8, warmup_m=20)
        result = technique.run(workload, CONFIG, TEST_SCALE)
        assert result.cpi == pytest.approx(reference.cpi, rel=0.15)

    def test_simulates_less_than_reference(self, workload):
        technique = SimPointTechnique(interval_m=20, max_k=10)
        result = technique.run(workload, CONFIG, TEST_SCALE)
        assert result.detailed_instructions < len(workload.trace(TEST_SCALE))

    def test_work_profile_accounts_whole_trace(self, workload):
        technique = SimPointTechnique(interval_m=20, max_k=10)
        result = technique.run(workload, CONFIG, TEST_SCALE)
        assert result.profiled_instructions == len(workload.trace(TEST_SCALE))
        assert result.functional_warm_instructions > 0

    def test_regions_sorted_and_weighted(self, workload):
        technique = SimPointTechnique(interval_m=20, max_k=10)
        result = technique.run(workload, CONFIG, TEST_SCALE)
        starts = [start for start, _ in result.regions]
        assert starts == sorted(starts)
        assert sum(result.weights) == pytest.approx(1.0)

    def test_reusing_selection_is_consistent(self, workload):
        technique = SimPointTechnique(interval_m=20, max_k=10)
        selection = technique.select(workload, TEST_SCALE)
        a = technique.run(workload, CONFIG, TEST_SCALE, selection=selection)
        b = technique.run(workload, CONFIG, TEST_SCALE)
        assert a.cpi == pytest.approx(b.cpi)

    def test_permutation_labels(self):
        assert SimPointTechnique(100, 1).permutation == "single 100M"
        assert (
            SimPointTechnique(10, 100).permutation == "multiple (max_k 100) 10M"
        )
