"""End-to-end tests of the heavy experiment drivers at micro scale.

One shared context at Scale(2) with a single benchmark keeps the whole
module to a few seconds while exercising every driver's plumbing.
"""

import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3_4,
    figure5,
    section52,
)
from repro.experiments.common import ExperimentContext
from repro.scale import Scale


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(scale=Scale(2), benchmarks=("gzip",), depth="quick")


@pytest.fixture(scope="module")
def svat_context():
    # Figures 3/4 are defined for gcc and mcf.
    return ExperimentContext(
        scale=Scale(2), benchmarks=("gcc", "mcf"), depth="quick"
    )


class TestFigure1Driver:
    def test_rows_cover_families(self, context):
        report = figure1.run(context)
        families = {row[1] for row in report.rows}
        assert families == {
            "SimPoint", "SMARTS", "Reduced", "Run Z", "FF+Run Z", "FF+WU+Run Z",
        }

    def test_distances_in_range(self, context):
        report = figure1.run(context)
        for _, _, mean, lo, hi in report.rows:
            assert 0 <= lo <= mean <= hi <= 100

    def test_reference_distance_is_zero(self, context):
        workload = context.workload("gzip")
        reference = figure1.reference_pb_result(context, workload)
        assert reference.distance_to(reference) == 0.0


class TestFigure2Driver:
    def test_series_full_length(self, context):
        series = figure2.difference_series(context, "gzip")
        assert len(series) == 43

    def test_report_rows(self, context):
        report = figure2.run(context)
        ns = sorted({row[1] for row in report.rows})
        assert ns == [1, 3, 5, 10, 20, 43]


class TestSvatDriver:
    def test_points_have_positive_speed(self, svat_context):
        points = figure3_4.svat_points(svat_context, "gcc")
        assert points
        for point in points:
            assert point.speed_percent > 0
            assert point.accuracy >= 0

    def test_figure3_and_4_report(self, svat_context):
        fig3 = figure3_4.run_figure3(svat_context)
        fig4 = figure3_4.run_figure4(svat_context)
        assert "gcc" in fig3.title
        assert "mcf" in fig4.title
        assert len(fig3.rows) == len(fig4.rows)


class TestFigure5Driver:
    def test_worst_and_best_rows(self, context):
        report = figure5.run(context)
        kinds = [row[1] for row in report.rows]
        assert kinds.count("worst") == kinds.count("best")
        for row in report.rows:
            assert 0.0 <= row[3] <= 1.0  # share within 0-3%


class TestSection52Drivers:
    def test_profile_rows(self, context):
        report = section52.run_profile(context)
        assert report.rows
        for row in report.rows:
            assert row[3] >= 0  # chi-squared statistic

    def test_architectural_rows(self, context):
        report = section52.run_architectural(context)
        assert report.rows
        for row in report.rows:
            assert row[3] >= 0.0
