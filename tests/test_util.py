"""Tests for RNG streams and vector utilities."""

import numpy as np
import pytest

from repro.util.rng import child_rng, stream_seed
from repro.util.vectors import (
    euclidean_distance,
    manhattan_distance,
    normalize_vector,
    rank_vector,
)


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed(1, "a", "b") == stream_seed(1, "a", "b")

    def test_distinct_names(self):
        assert stream_seed(1, "a") != stream_seed(1, "b")

    def test_distinct_roots(self):
        assert stream_seed(1, "a") != stream_seed(2, "a")

    def test_name_boundary_not_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stream_seed(1, "ab", "c") != stream_seed(1, "a", "bc")

    def test_non_string_parts(self):
        assert stream_seed(1, 5, 7) == stream_seed(1, "5", "7")

    def test_range(self):
        seed = stream_seed(12345, "x")
        assert 0 <= seed < 2**63


class TestChildRng:
    def test_reproducible_draws(self):
        a = child_rng(7, "stream").random(5)
        b = child_rng(7, "stream").random(5)
        assert np.array_equal(a, b)

    def test_independent_streams(self):
        a = child_rng(7, "one").random(5)
        b = child_rng(7, "two").random(5)
        assert not np.array_equal(a, b)


class TestDistances:
    def test_euclidean_basics(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan_basics(self):
        assert manhattan_distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_zero_distance(self):
        assert euclidean_distance([1, 2, 3], [1, 2, 3]) == 0.0
        assert manhattan_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_distance([1], [1, 2])
        with pytest.raises(ValueError):
            manhattan_distance([1], [1, 2])

    def test_symmetry(self):
        a, b = [1.5, -2.0, 7.0], [0.0, 4.0, -1.0]
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))
        assert manhattan_distance(a, b) == pytest.approx(manhattan_distance(b, a))

    def test_manhattan_at_least_euclidean(self):
        a, b = [1.0, 2.0, 3.0], [4.0, 0.0, -2.0]
        assert manhattan_distance(a, b) >= euclidean_distance(a, b)


class TestNormalizeVector:
    def test_basic(self):
        out = normalize_vector([2.0, 6.0], [2.0, 3.0])
        assert out.tolist() == [1.0, 2.0]

    def test_zero_reference_passthrough(self):
        out = normalize_vector([5.0, 4.0], [0.0, 2.0])
        assert out.tolist() == [5.0, 2.0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalize_vector([1.0], [1.0, 2.0])


class TestRankVector:
    def test_simple(self):
        # Largest magnitude gets rank 1.
        assert rank_vector([0.5, -3.0, 1.0]) == [3, 1, 2]

    def test_sign_ignored(self):
        assert rank_vector([-10.0, 5.0]) == [1, 2]

    def test_ties_broken_by_index(self):
        assert rank_vector([2.0, 2.0, 2.0]) == [1, 2, 3]

    def test_permutation_property(self):
        ranks = rank_vector([0.1, 7.0, -2.0, 0.0, 3.3])
        assert sorted(ranks) == [1, 2, 3, 4, 5]

    def test_empty(self):
        assert rank_vector([]) == []
