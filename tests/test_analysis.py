"""Tests for SvAT, configuration dependence, speedups and the tree."""

import pytest

from repro.analysis.config_dependence import (
    CPI_ERROR_BINS,
    ConfigDependenceResult,
    bin_label,
    cpi_error_histogram,
    error_trends,
    worst_and_best,
)
from repro.analysis.decision import (
    ALL_CRITERIA,
    DECISION_TREE,
    criterion_ordering,
    recommend,
)
from repro.analysis.speedup import SpeedupComparison, speedup
from repro.analysis.survey import PREVALENCE, prevalence_table, top_four_share
from repro.analysis.svat import CostModel, svat_point
from repro.cpu.stats import SimulationStats
from repro.techniques.base import TechniqueResult

from tests.conftest import make_micro_workload


def make_result(cpi=2.0, detailed=1000, warm=0, functional=0, ff=0, profiled=0):
    stats = SimulationStats()
    stats.instructions = 1000
    stats.cycles = int(1000 * cpi)
    return TechniqueResult(
        family="fam",
        permutation="perm",
        workload=make_micro_workload(),
        config_name="cfg",
        stats=stats,
        detailed_instructions=detailed,
        warm_detailed_instructions=warm,
        functional_warm_instructions=functional,
        fastforward_instructions=ff,
        profiled_instructions=profiled,
    )


class TestCostModel:
    def test_detailed_dominates(self):
        model = CostModel()
        cheap = model.cost(make_result(detailed=100))
        costly = model.cost(make_result(detailed=10000))
        assert costly > cheap

    def test_mode_weights(self):
        model = CostModel(detailed=1.0, functional_warm=0.25, fastforward=0.02)
        result = make_result(detailed=100, functional=400, ff=1000)
        assert model.cost(result) == pytest.approx(100 + 100 + 20)


class TestSvatPoint:
    def test_reference_is_100_percent(self):
        reference = [make_result(detailed=1000)]
        point = svat_point(reference, reference)
        assert point.speed_percent == pytest.approx(100.0)
        assert point.accuracy == pytest.approx(0.0)

    def test_cheap_technique_fast(self):
        reference = [make_result(cpi=2.0, detailed=10000)]
        technique = [make_result(cpi=2.2, detailed=100)]
        point = svat_point(technique, reference)
        assert point.speed_percent < 5.0
        assert point.accuracy == pytest.approx(0.2)

    def test_profiling_amortized_across_configs(self):
        reference = [make_result(detailed=1000)] * 3
        technique = [make_result(detailed=100, profiled=1000)] * 3
        point = svat_point(technique, reference)
        model = CostModel()
        # Profiling charged once, not three times.
        expected = (3 * 100 * model.detailed + 1000 * model.profiling) / (
            3 * 1000 * model.detailed
        )
        assert point.speed_percent == pytest.approx(100 * expected)

    def test_mismatched_configs(self):
        with pytest.raises(ValueError):
            svat_point([make_result()], [make_result(), make_result()])


class TestConfigDependence:
    def test_histogram_bins(self):
        result = ConfigDependenceResult(
            family="f", permutation="p",
            errors=[0.01, -0.02, 0.05, 0.35, 0.29],
        )
        histogram = result.histogram
        assert sum(histogram) == pytest.approx(1.0)
        assert histogram[0] == pytest.approx(2 / 5)  # 0-3%
        assert histogram[1] == pytest.approx(1 / 5)  # 3-6%
        assert histogram[-1] == pytest.approx(1 / 5)  # >30%

    def test_within_3_percent(self):
        result = ConfigDependenceResult("f", "p", [0.0, 0.029, 0.031])
        assert result.within_3_percent == pytest.approx(2 / 3)

    def test_error_trends(self):
        assert error_trends([0.1, 0.2, 0.05])
        assert error_trends([-0.1, -0.2, -0.05])
        assert not error_trends([0.3, -0.3, 0.3, -0.3])

    def test_cpi_error_histogram_construction(self):
        record = cpi_error_histogram("f", "p", [2.2, 1.8], [2.0, 2.0])
        assert record.errors == pytest.approx([0.1, -0.1])

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            cpi_error_histogram("f", "p", [1.0], [0.0])

    def test_worst_and_best(self):
        good = ConfigDependenceResult("f", "good", [0.01, 0.02])
        bad = ConfigDependenceResult("f", "bad", [0.5, 0.6])
        worst, best = worst_and_best([good, bad])
        assert worst.permutation == "bad"
        assert best.permutation == "good"

    def test_bin_labels(self):
        assert bin_label(CPI_ERROR_BINS[0]) == "0% to 3%"
        assert bin_label(CPI_ERROR_BINS[-1]) == "> 30%"


class TestSpeedup:
    def test_speedup_sign(self):
        assert speedup(2.0, 1.0) == pytest.approx(1.0)  # 2x faster
        assert speedup(1.0, 2.0) == pytest.approx(-0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_comparison_difference(self):
        comparison = SpeedupComparison(
            family="f", permutation="p", enhancement="NLP",
            technique_speedup=0.15, reference_speedup=0.10,
        )
        assert comparison.difference == pytest.approx(0.05)


class TestDecisionTree:
    def test_single_criterion_matches_ordering(self):
        for criterion in ALL_CRITERIA:
            ranking = [t for t, _ in recommend([criterion])]
            assert tuple(ranking) == criterion_ordering(criterion)

    def test_accuracy_first(self):
        ranking = recommend(["accuracy"])
        assert ranking[0][0] == "SMARTS"
        assert ranking[-1][0] == "Reduced"

    def test_svat_first(self):
        assert recommend(["speed_vs_accuracy"])[0][0] == "SimPoint"

    def test_blended_priorities(self):
        ranking = [t for t, _ in recommend(["accuracy", "complexity_to_use"])]
        # Accuracy dominates, so sampling still leads.
        assert ranking[0] in ("SMARTS", "SimPoint")

    def test_unknown_criterion(self):
        with pytest.raises(ValueError):
            recommend(["vibes"])

    def test_empty_priorities(self):
        with pytest.raises(ValueError):
            recommend([])

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            recommend(["accuracy"], weights=[1.0, 2.0])

    def test_tree_renders(self):
        text = DECISION_TREE.render()
        assert "technical_factors" in text
        assert "SMARTS" in text


class TestSurvey:
    def test_prevalence_sums_to_one(self):
        assert sum(PREVALENCE.values()) == pytest.approx(1.0)

    def test_table_sorted(self):
        shares = [s for _, s in prevalence_table()]
        assert shares == sorted(shares, reverse=True)

    def test_top_four_share_matches_paper(self):
        # The paper: the four most popular cover almost 90%.
        assert 0.85 < top_four_share() < 0.9
