"""Tests for TechniqueResult (block profiles, labels, work profile)."""

import numpy as np
import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.techniques import ReferenceTechnique, RunZ
from repro.techniques.base import TechniqueResult

from tests.conftest import TEST_SCALE, make_micro_workload

CONFIG = ARCH_CONFIGS[0]


@pytest.fixture(scope="module")
def workload():
    return make_micro_workload(length_m=400, seed=77)


class TestBlockProfile:
    def test_reference_profile_covers_whole_trace(self, workload):
        result = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)
        profile = result.block_profile(TEST_SCALE)
        trace = workload.trace(TEST_SCALE)
        assert profile.sum() == pytest.approx(len(trace))
        assert len(profile) == trace.num_blocks

    def test_truncated_profile_covers_region_only(self, workload):
        result = RunZ(100).run(workload, CONFIG, TEST_SCALE)
        profile = result.block_profile(TEST_SCALE)
        assert profile.sum() == pytest.approx(TEST_SCALE.instructions(100))

    def test_entries_profile_counts_block_entries(self, workload):
        result = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)
        bbef = result.block_profile(TEST_SCALE, entries=True)
        bbv = result.block_profile(TEST_SCALE)
        # Each block entry executes at least one instruction.
        assert (bbef <= bbv + 1e-9).all()
        assert bbef.sum() > 0

    def test_weighted_regions(self, workload):
        reference = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)
        weighted = TechniqueResult(
            family="x", permutation="y", workload=workload,
            config_name="c", stats=reference.stats,
            regions=[(0, 100), (100, 200)], weights=[1.0, 3.0],
        )
        profile = weighted.block_profile(TEST_SCALE)
        trace = workload.trace(TEST_SCALE)
        expected = (
            1.0 * trace.block_execution_counts(0, 100)
            + 3.0 * trace.block_execution_counts(100, 200)
        )
        assert np.allclose(profile, expected)

    def test_no_regions_defaults_to_whole_trace(self, workload):
        reference = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)
        bare = TechniqueResult(
            family="x", permutation="y", workload=workload,
            config_name="c", stats=reference.stats,
        )
        assert bare.block_profile(TEST_SCALE).sum() == pytest.approx(
            len(workload.trace(TEST_SCALE))
        )


class TestLabels:
    def test_label_concatenates(self, workload):
        result = RunZ(100).run(workload, CONFIG, TEST_SCALE)
        assert result.label == "Run Z: Run 100M"

    def test_repr_of_technique(self):
        text = repr(RunZ(100))
        assert "Run Z" in text
