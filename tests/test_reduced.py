"""Tests for the reduced-input technique."""

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.scale import Scale
from repro.techniques.reduced import ReducedInputTechnique
from repro.techniques.reference import ReferenceTechnique
from repro.workloads.spec import get_workload

SCALE = Scale(2)
CONFIG = ARCH_CONFIGS[0]


class TestReducedInput:
    def test_rejects_reference(self):
        with pytest.raises(ValueError):
            ReducedInputTechnique("reference")

    def test_display_names(self):
        assert ReducedInputTechnique("small").permutation == "MinneSPEC small"
        assert ReducedInputTechnique("test").permutation == "SPEC test"

    def test_availability(self):
        assert ReducedInputTechnique("small").is_available("gzip")
        assert not ReducedInputTechnique("small").is_available("art")

    def test_runs_reduced_workload(self):
        workload = get_workload("gzip")  # reference
        result = ReducedInputTechnique("test").run(workload, CONFIG, SCALE)
        # The result's workload is the *reduced* one.
        assert result.workload.input_set.name == "test"
        assert result.detailed_instructions == len(result.workload.trace(SCALE))

    def test_simulates_everything_in_detail(self):
        workload = get_workload("gzip")
        result = ReducedInputTechnique("small").run(workload, CONFIG, SCALE)
        assert result.fastforward_instructions == 0
        assert result.functional_warm_instructions == 0
        assert result.regions[0] == (0, result.detailed_instructions)

    def test_differs_from_reference(self):
        scale = Scale(10)  # large enough to escape cold-start noise
        workload = get_workload("mcf")
        reference = ReferenceTechnique().run(workload, CONFIG, scale)
        reduced = ReducedInputTechnique("test").run(workload, CONFIG, scale)
        # mcf's reduced inputs are cache-resident: far lower CPI.
        assert reduced.cpi < reference.cpi

    def test_missing_input_raises(self):
        workload = get_workload("art")
        with pytest.raises(KeyError):
            ReducedInputTechnique("small").run(workload, CONFIG, SCALE)
