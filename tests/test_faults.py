"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.engine import faults
from repro.engine.faults import (
    EVERY_ATTEMPT,
    FAULT_PLAN_ENV_VAR,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    parse_plan,
)


class TestPlanParsing:
    def test_empty_plan(self):
        assert parse_plan("") == []
        assert parse_plan("   ") == []

    def test_compact_entries(self):
        plan = parse_plan("exc@2,hang@5:30,kill@7,kernel@3:numpy")
        assert plan == [
            FaultSpec(kind="exc", slot=2),
            FaultSpec(kind="hang", slot=5, arg="30"),
            FaultSpec(kind="kill", slot=7),
            FaultSpec(kind="kernel", slot=3, arg="numpy"),
        ]

    def test_compact_repeats(self):
        assert parse_plan("exc@2x9") == [
            FaultSpec(kind="exc", slot=2, max_attempt=9)
        ]
        assert parse_plan("exc@2x*") == [
            FaultSpec(kind="exc", slot=2, max_attempt=EVERY_ATTEMPT)
        ]

    def test_json_entries(self):
        plan = parse_plan(
            '[{"fault": "hang", "slot": 4, "arg": "2.5", "max_attempt": 3}]'
        )
        assert plan == [
            FaultSpec(kind="hang", slot=4, arg="2.5", max_attempt=3)
        ]

    def test_bad_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            parse_plan("meltdown@3")
        with pytest.raises(FaultPlanError):
            parse_plan('[{"fault": "meltdown", "slot": 3}]')

    def test_bad_shapes_rejected(self):
        with pytest.raises(FaultPlanError):
            parse_plan("exc")
        with pytest.raises(FaultPlanError):
            parse_plan("exc@notanumber")
        with pytest.raises(FaultPlanError):
            parse_plan("[not json")

    def test_network_verbs(self):
        plan = parse_plan("dead@1,drop@2,delay@3:400")
        assert plan == [
            FaultSpec(kind="dead", slot=1),
            FaultSpec(kind="drop", slot=2),
            FaultSpec(kind="delay", slot=3, arg="400"),
        ]

    def test_artifact_verbs(self):
        """``corrupt`` flips a fetched chunk byte; ``drop@N:fetch``
        severs mid-``artifact_fetch`` instead of after execution."""
        plan = parse_plan("corrupt@2,drop@1:fetch")
        assert plan == [
            FaultSpec(kind="corrupt", slot=2),
            FaultSpec(kind="drop", slot=1, arg="fetch"),
        ]


class TestNetworkFaults:
    """``network_fault`` keys on the agent's Nth granted lease."""

    def test_matches_lease_ordinal(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_PLAN_ENV_VAR, "drop@2,delay@4:250")
        assert faults.network_fault(1) is None
        spec = faults.network_fault(2)
        assert spec is not None and spec.kind == "drop"
        assert faults.network_fault(3) is None
        spec = faults.network_fault(4)
        assert spec is not None and spec.kind == "delay" and spec.arg == "250"

    def test_ignores_process_fault_verbs(self, monkeypatch):
        # kill@1 targets plan slot 1 inside a worker process; it must
        # never fire on an agent's lease ordinal.
        monkeypatch.setenv(faults.FAULT_PLAN_ENV_VAR, "kill@1,exc@2")
        assert faults.network_fault(1) is None
        assert faults.network_fault(2) is None

    def test_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_PLAN_ENV_VAR, raising=False)
        assert faults.network_fault(1) is None


class TestMatching:
    def test_first_attempt_only_by_default(self):
        spec = FaultSpec(kind="exc", slot=3)
        assert spec.matches(3, 1)
        assert not spec.matches(3, 2)
        assert not spec.matches(4, 1)

    def test_every_attempt(self):
        spec = FaultSpec(kind="exc", slot=3, max_attempt=EVERY_ATTEMPT)
        assert spec.matches(3, 1) and spec.matches(3, 99)

    def test_bounded_attempts(self):
        spec = FaultSpec(kind="exc", slot=3, max_attempt=2)
        assert spec.matches(3, 2)
        assert not spec.matches(3, 3)


class TestActivation:
    @pytest.fixture(autouse=True)
    def _deactivate(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV_VAR, raising=False)
        yield
        faults.deactivate()

    def test_no_plan_is_noop(self, monkeypatch):
        faults.activate(0, 1)
        faults.kernel_check("numpy")  # nothing armed: must not raise

    def test_exc_fires_on_matching_slot(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@2")
        faults.activate(0, 1)  # other slot: no fault
        with pytest.raises(InjectedFault):
            faults.activate(2, 1)
        faults.activate(2, 2)  # retry attempt: transient fault is gone

    def test_kernel_fault_matches_backend(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kernel@1:numpy")
        faults.activate(1, 1)
        faults.kernel_check("numba")  # other backend: no fault
        with pytest.raises(InjectedFault):
            faults.kernel_check("numpy")

    def test_kernel_fault_without_backend_hits_any(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kernel@1")
        faults.activate(1, 1)
        with pytest.raises(InjectedFault):
            faults.kernel_check("numba")

    def test_kernel_check_inactive_outside_run(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kernel@1:numpy")
        faults.deactivate()
        faults.kernel_check("numpy")  # no active run: must not raise

    def test_plan_reparsed_when_env_changes(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@5")
        faults.activate(0, 1)
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@0")
        with pytest.raises(InjectedFault):
            faults.activate(0, 1)

    def test_activate_raising_does_not_leave_plan_armed(self, monkeypatch):
        # An exc fault propagates out of activate() before the worker's
        # try/finally (and deactivate()) is ever entered; the kernel
        # guard must not see a stale armed run afterwards.
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@2,kernel@2")
        with pytest.raises(InjectedFault):
            faults.activate(2, 1)
        faults.kernel_check("numpy")  # no active run: must not raise

    def test_injected_fault_signature_is_stable(self, monkeypatch):
        # Quarantine keys on identical failure signatures, so the same
        # injected fault must raise the same message every time.
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@2x*")
        messages = set()
        for attempt in (1, 2, 3):
            with pytest.raises(InjectedFault) as excinfo:
                faults.activate(2, attempt)
            messages.add(str(excinfo.value))
        assert len(messages) == 1


class TestKernelGuard:
    def test_kernel_error_carries_fallback(self):
        from repro.cpu.kernels.registry import KERNEL_FALLBACK, KernelError

        assert KERNEL_FALLBACK == {"numba": "numpy", "numpy": "python"}
        assert KernelError("numba", "boom").fallback == "numpy"
        assert KernelError("numpy", "boom").fallback == "python"
        assert KernelError("python", "boom").fallback is None

    def test_kernel_error_pickles(self):
        import pickle

        from repro.cpu.kernels.registry import KernelError

        error = KernelError("numpy", "kernel exploded")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, KernelError)
        assert clone.backend == "numpy"
        assert str(clone) == "kernel exploded"

    def test_guarded_backend_raises_kernel_error(self, monkeypatch, micro_workload, test_scale):
        from repro.cpu.kernels.registry import KernelError, get_backend
        from repro.cpu.machine import Machine
        from repro.cpu.config import ARCH_CONFIGS

        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kernel@0:numpy")
        faults.activate(0, 1)
        try:
            machine = Machine(ARCH_CONFIGS[0], backend="numpy")
            trace = micro_workload.trace(test_scale)
            with pytest.raises(KernelError) as excinfo:
                machine.backend.run_warming(machine, trace, 0, min(64, len(trace)))
            assert excinfo.value.backend == "numpy"
            assert excinfo.value.fallback == "python"
        finally:
            faults.deactivate()
