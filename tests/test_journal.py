"""Tests for the crash-safe sweep journal and resume semantics."""

import json
import signal
import subprocess
import sys
import time

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.engine import (
    JOURNAL_FILENAME,
    Engine,
    EngineRunError,
    RunRequest,
)
from repro.engine.journal import JournalMismatch, SweepJournal
from repro.engine.planner import RESULTS_EPOCH
from repro.scale import Scale
from repro.techniques.truncated import RunZ
from repro.workloads.spec import get_workload

from tests.test_engine import SCALE, _result_fingerprint


@pytest.fixture()
def workload():
    return get_workload("gzip")


class TestJournalFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.start(2.0, RESULTS_EPOCH, 1)
            journal.planned("aaa", "run a")
            journal.planned("bbb", "run b")
            journal.completed("aaa", 0.5, backend=None)
            journal.degraded("bbb", "numba", "numpy")
            journal.completed("bbb", 1.5, backend="numpy")
            journal.failed("ccc", "timeout", "run exceeded 5s")
            journal.failed("ddd", "deterministic", "boom", quarantined=True)
        state = SweepJournal.load(path)
        assert state.completed == {"aaa", "bbb"}
        assert state.planned == {"aaa", "bbb"}
        assert "ccc" in state.failed
        assert state.failed["ccc"]["kind"] == "timeout"
        assert "ddd" in state.quarantined
        assert state.scale == 2.0
        assert state.epoch == RESULTS_EPOCH

    def test_completed_after_failure_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.failed("abc", "transient", "flake")
            journal.completed("abc", 0.1)
        state = SweepJournal.load(path)
        assert "abc" in state.completed
        assert "abc" not in state.failed

    def test_truncated_tail_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.start(2.0, RESULTS_EPOCH, 1)
            journal.completed("aaa", 0.5)
        # Simulate a crash mid-append: a partial, non-JSON final line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "completed", "key": "bb')
        state = SweepJournal.load(path)
        assert state.completed == {"aaa"}

    def test_missing_file_is_empty_state(self, tmp_path):
        state = SweepJournal.load(tmp_path / "nope.jsonl")
        assert not state.completed
        assert not state.quarantined

    def test_scale_mismatch_refuses_resume(self, tmp_path):
        state = SweepJournal.load(tmp_path / "nope.jsonl")
        state.scale = 7.0
        with pytest.raises(JournalMismatch):
            state.check_compatible(2.0, RESULTS_EPOCH)

    def test_epoch_mismatch_refuses_resume(self, tmp_path):
        state = SweepJournal.load(tmp_path / "nope.jsonl")
        state.epoch = RESULTS_EPOCH + 1
        with pytest.raises(JournalMismatch):
            state.check_compatible(2.0, RESULTS_EPOCH)


class TestEngineJournalling:
    def _requests(self, workload, n=6):
        return [
            RunRequest(RunZ(100 + 50 * i), workload, ARCH_CONFIGS[0])
            for i in range(n)
        ]

    def test_journal_written_alongside_cache(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        engine.run_many(self._requests(workload, 2))
        engine.close()
        path = tmp_path / JOURNAL_FILENAME
        assert path.exists()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds.count("planned") == 2
        assert kinds.count("completed") == 2

    def test_resume_skips_completed_runs(self, tmp_path, workload):
        requests = self._requests(workload)
        # Uninterrupted reference sweep (separate cache).
        reference = Engine(scale=SCALE, jobs=1).run_many(requests)

        # "Interrupted" sweep: only the first half ran before the kill.
        first = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        first.run_many(requests[:3])
        first.close()

        resumed = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, resume=True)
        results = resumed.run_many(requests)
        assert resumed.metrics.resumed == 3
        assert resumed.metrics.runs_launched == 3  # only the second half
        for a, b in zip(reference, results):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_fresh_sweep_rotates_stale_journal(self, tmp_path, workload):
        requests = self._requests(workload, 2)
        first = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        first.run_many(requests)
        first.close()
        previous = (tmp_path / JOURNAL_FILENAME).read_text()
        # A non-resume engine starts a new journal; the store still
        # serves the results (as cache hits, not resumed runs).
        second = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        second.run_many(requests)
        second.close()
        assert second.metrics.resumed == 0
        assert second.metrics.cache_hits == 2
        events = [
            json.loads(line)
            for line in (tmp_path / JOURNAL_FILENAME).read_text().splitlines()
        ]
        assert sum(1 for e in events if e["event"] == "start") == 1
        # The superseded journal is a post-mortem artifact: rotated
        # aside, never destroyed.
        rotated = tmp_path / (JOURNAL_FILENAME + ".1")
        assert rotated.read_text() == previous

    def test_rotation_keeps_only_one_generation(self, tmp_path, workload):
        requests = self._requests(workload, 2)
        for _ in range(3):
            engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
            engine.run_many(requests)
            engine.close()
        assert (tmp_path / JOURNAL_FILENAME).exists()
        assert (tmp_path / (JOURNAL_FILENAME + ".1")).exists()
        assert not (tmp_path / (JOURNAL_FILENAME + ".2")).exists()

    def test_resume_skips_quarantined_runs(self, tmp_path, workload, monkeypatch):
        from repro.engine.faults import FAULT_PLAN_ENV_VAR

        requests = self._requests(workload, 3)
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@0x*")
        first = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, backoff_base=0.0)
        with pytest.raises(EngineRunError):
            first.run_many(requests)
        first.close()
        assert first.metrics.quarantined == 1

        monkeypatch.delenv(FAULT_PLAN_ENV_VAR)
        resumed = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path, resume=True,
            backoff_base=0.0,
        )
        with pytest.raises(EngineRunError) as excinfo:
            resumed.run_many(requests)
        # The poison run was skipped, not re-executed: nothing launched
        # beyond the two runs the first sweep completed.
        assert resumed.metrics.runs_launched == 0
        assert resumed.metrics.resumed == 2
        assert len(excinfo.value.errors) == 1
        results = resumed.run_many(requests, allow_errors=True)
        assert results[0] is None
        assert results[1] is not None and results[2] is not None

    def test_resume_requires_cache_dir(self):
        with pytest.raises(ValueError):
            Engine(scale=SCALE, jobs=1, resume=True)

    def test_resume_refuses_other_scale(self, tmp_path, workload):
        first = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        first.run_many(self._requests(workload, 1))
        first.close()
        with pytest.raises(JournalMismatch):
            Engine(scale=Scale(3), jobs=1, cache_dir=tmp_path, resume=True)

    def test_journal_completed_but_store_missing_reexecutes(
        self, tmp_path, workload
    ):
        requests = self._requests(workload, 2)
        first = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        first.run_many(requests)
        first.close()
        # Wipe one store entry: the journal says completed, but the
        # store is the source of truth, so the run must re-execute.
        victim = next(iter((tmp_path / "v1").glob("*/*.json")))
        victim.unlink()
        resumed = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, resume=True)
        resumed.run_many(requests)
        assert resumed.metrics.runs_launched == 1
        assert resumed.metrics.resumed == 1


_SIGKILL_SWEEP = '''
import json, sys
from repro.engine import Engine, RunRequest
from repro.scale import Scale
from repro.workloads.spec import get_workload
from repro.cpu.config import ARCH_CONFIGS
from repro.techniques.truncated import RunZ

workload = get_workload("gzip")
requests = [
    RunRequest(RunZ(100 + 25 * i), workload, config)
    for i in range(12)
    for config in ARCH_CONFIGS[:2]
]
engine = Engine(
    scale=Scale(2), jobs=2, cache_dir=sys.argv[1], resume=(sys.argv[2] == "resume")
)
results = engine.run_many(requests)
print("RESUMED", engine.metrics.resumed, "LAUNCHED", engine.metrics.runs_launched,
      file=sys.stderr)
print(json.dumps([sorted(r.stats.counters().items()) for r in results]))
'''


@pytest.mark.slow
class TestSigkillResume:
    """The acceptance scenario: a sweep SIGKILLed mid-run resumes
    without re-executing journaled runs, bit-identical output."""

    def _run(self, cache_dir, mode):
        return subprocess.run(
            [sys.executable, "-c", _SIGKILL_SWEEP, str(cache_dir), mode],
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_sigkill_then_resume_bit_identical(self, tmp_path):
        reference_dir = tmp_path / "ref"
        killed_dir = tmp_path / "killed"
        reference = self._run(reference_dir, "fresh")
        assert reference.returncode == 0, reference.stderr

        victim = subprocess.Popen(
            [sys.executable, "-c", _SIGKILL_SWEEP, str(killed_dir), "fresh"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Let it journal some completions, then kill it mid-sweep.
        deadline = time.monotonic() + 60
        journal = killed_dir / JOURNAL_FILENAME
        while time.monotonic() < deadline:
            if journal.exists() and '"completed"' in journal.read_text():
                break
            time.sleep(0.05)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        completed = sum(
            1 for line in journal.read_text().splitlines() if '"completed"' in line
        )
        assert completed >= 1  # it really was mid-sweep when killed

        resumed = self._run(killed_dir, "resume")
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout.splitlines()[-1] == reference.stdout.splitlines()[-1]
