"""Tests for k-means clustering and BIC model selection."""

import numpy as np
import pytest

from repro.techniques.simpoint.bbv import normalize_bbvs, project_bbvs
from repro.techniques.simpoint.kmeans import bic_score, kmeans, pick_k
from repro.util.rng import child_rng


def three_blobs(n_per=30, separation=10.0, seed=0):
    rng = child_rng(seed, "blobs")
    centers = np.array([[0.0, 0.0], [separation, 0.0], [0.0, separation]])
    points = np.vstack(
        [center + rng.normal(0, 0.5, (n_per, 2)) for center in centers]
    )
    return points


class TestKMeans:
    def test_finds_separated_clusters(self):
        points = three_blobs()
        result = kmeans(points, 3)
        sizes = sorted(result.cluster_sizes.tolist())
        assert sizes == [30, 30, 30]

    def test_k1_centroid_is_mean(self):
        points = three_blobs()
        result = kmeans(points, 1)
        assert np.allclose(result.centroids[0], points.mean(axis=0))

    def test_inertia_decreases_with_k(self):
        points = three_blobs()
        inertias = [kmeans(points, k).inertia for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic(self):
        points = three_blobs()
        a = kmeans(points, 3, seed=5)
        b = kmeans(points, 3, seed=5)
        assert np.array_equal(a.assignments, b.assignments)

    def test_k_bounds(self):
        points = three_blobs(n_per=2)
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 7)

    def test_every_point_assigned(self):
        points = three_blobs()
        result = kmeans(points, 3)
        assert len(result.assignments) == len(points)
        assert result.assignments.min() >= 0
        assert result.assignments.max() < 3


class TestBIC:
    def test_bic_prefers_true_k(self):
        points = three_blobs(separation=20.0)
        scores = {k: kmeans(points, k).bic for k in (1, 2, 3, 4, 5)}
        assert scores[3] > scores[1]
        assert scores[3] > scores[2]

    def test_pick_k_selects_reasonable_k(self):
        points = three_blobs(separation=20.0)
        result = pick_k(points, max_k=6)
        assert result.k in (3, 4)

    def test_pick_k_single_cluster_data(self):
        rng = child_rng(1, "single")
        points = rng.normal(0, 1.0, (60, 2))
        result = pick_k(points, max_k=5)
        assert result.k <= 3  # no strong structure

    def test_pick_k_caps_at_points(self):
        points = three_blobs(n_per=2)
        result = pick_k(points, max_k=50)
        assert result.k <= 6


class TestBBVPreparation:
    def test_normalize_rows_sum_to_one(self):
        bbvs = np.array([[2.0, 2.0], [0.0, 4.0]])
        out = normalize_bbvs(bbvs)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_normalize_zero_row_kept(self):
        bbvs = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = normalize_bbvs(bbvs)
        assert np.allclose(out[0], 0.0)

    def test_normalize_requires_2d(self):
        with pytest.raises(ValueError):
            normalize_bbvs(np.zeros(4))

    def test_projection_shape(self):
        bbvs = np.random.default_rng(0).random((10, 100))
        out = project_bbvs(bbvs, dims=15, seed=1)
        assert out.shape == (10, 15)

    def test_projection_deterministic(self):
        bbvs = np.random.default_rng(0).random((10, 100))
        a = project_bbvs(bbvs, seed=1)
        b = project_bbvs(bbvs, seed=1)
        assert np.array_equal(a, b)

    def test_projection_skipped_for_small_dims(self):
        bbvs = np.random.default_rng(0).random((10, 8))
        out = project_bbvs(bbvs, dims=15)
        assert out.shape == (10, 8)

    def test_projection_preserves_distinctness(self):
        # Two very different BBVs stay apart after projection.
        a = np.zeros((2, 200))
        a[0, :100] = 1.0
        a[1, 100:] = 1.0
        out = project_bbvs(normalize_bbvs(a), seed=1)
        assert np.linalg.norm(out[0] - out[1]) > 0.01
