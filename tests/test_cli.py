"""Tests for the `python -m repro.experiments` command line."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "figure1", "figure7", "survey"):
            assert name in out

    def test_registry_complete(self):
        # Every table/figure of the paper is runnable by id.
        expected = {
            "table1", "table2", "table3",
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "figure6", "figure7",
            "section52-profile", "section52-architectural", "survey",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_cheap_experiments(self, capsys):
        assert main(["table3", "survey", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "survey" in out
        assert "Figure 7" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_profile_option(self, capsys):
        assert main(["table2", "--profile", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_benchmark_subset(self, capsys):
        # table drivers ignore the context, but the option must parse.
        assert main(["table1", "--benchmarks", "gzip,mcf", "--depth", "quick"]) == 0
