"""Tests for the `python -m repro.experiments` command line."""

import json

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "figure1", "figure7", "survey"):
            assert name in out

    def test_registry_complete(self):
        # Every table/figure of the paper is runnable by id, plus the
        # batch-shaped latency-sweep drivers.
        expected = {
            "table1", "table2", "table3",
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "figure6", "figure7",
            "latency-sweep", "pb-latency",
            "section52-profile", "section52-architectural", "survey",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_cheap_experiments(self, capsys):
        assert main(["table3", "survey", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "survey" in out
        assert "Figure 7" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_profile_option(self, capsys):
        assert main(["table2", "--profile", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_benchmark_subset(self, capsys):
        # table drivers ignore the context, but the option must parse.
        assert main(["table1", "--benchmarks", "gzip,mcf", "--depth", "quick"]) == 0


class TestEngineOptions:
    def test_jobs_flag(self, capsys):
        assert main(["table3", "--jobs", "2"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["table3", "--jobs", "0"])

    def test_full_flag(self, capsys):
        # --full parses and switches the default benchmark tuple.
        assert main(["table2", "--full"]) == 0

    def test_env_jobs_fallback(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert main(["table3"]) == 0

    def test_env_jobs_garbage_rejected_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(SystemExit):
            main(["table3"])
        assert "REPRO_JOBS must be an integer" in capsys.readouterr().err

    def test_cache_dir_flag_writes_stats(self, tmp_path, capsys):
        assert main(
            [
                "figure6",
                "--cache-dir", str(tmp_path),
                "--jobs", "1",
                "--depth", "quick",
                "--benchmarks", "gzip",
                "--profile", "tiny",
            ]
        ) == 0
        stats_path = tmp_path / "engine-stats.json"
        assert stats_path.exists()
        document = json.loads(stats_path.read_text())
        assert document["runs_launched"] > 0
        assert document["cache_hits"] == 0

        # Second invocation with the same cache dir: everything served
        # from the persistent store.
        assert main(
            [
                "figure6",
                "--cache-dir", str(tmp_path),
                "--jobs", "1",
                "--depth", "quick",
                "--benchmarks", "gzip",
                "--profile", "tiny",
            ]
        ) == 0
        document = json.loads(stats_path.read_text())
        assert document["runs_launched"] == 0
        assert document["hit_rate"] >= 0.95

    def test_no_cache_disables_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table3", "--no-cache"]) == 0
        assert not (tmp_path / "engine-stats.json").exists()


class TestSupervisorOptions:
    def test_run_timeout_flag_parses(self, capsys):
        assert main(["table3", "--run-timeout", "300"]) == 0

    def test_run_timeout_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["table3", "--run-timeout", "0"])

    def test_max_retries_flag_parses(self, capsys):
        assert main(["table3", "--max-retries", "0"]) == 0

    def test_max_retries_must_be_nonnegative(self):
        with pytest.raises(SystemExit):
            main(["table3", "--max-retries", "-1"])

    def test_resume_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["table3", "--no-cache", "--resume"])
        assert "--resume requires a cache directory" in capsys.readouterr().err

    def test_resume_with_cache_dir(self, tmp_path, capsys):
        args = [
            "figure6",
            "--cache-dir", str(tmp_path),
            "--jobs", "1",
            "--depth", "quick",
            "--benchmarks", "gzip",
            "--profile", "tiny",
        ]
        assert main(args) == 0
        assert main(args + ["--resume"]) == 0
        document = json.loads((tmp_path / "engine-stats.json").read_text())
        assert document["runs_launched"] == 0
        assert document["resumed"] > 0
        assert document["run_timeout_s"] is None

    def test_trace_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["table3", "--no-cache", "--trace"])
        assert "--trace requires a cache directory" in capsys.readouterr().err

    def test_traced_sweep_writes_observability_files(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.prom"
        assert main(
            [
                "figure6",
                "--cache-dir", str(tmp_path / "cache"),
                "--jobs", "1",
                "--depth", "quick",
                "--benchmarks", "gzip",
                "--profile", "tiny",
                "--trace",
                "--metrics-file", str(metrics_file),
            ]
        ) == 0
        versioned = tmp_path / "cache" / "v1"
        assert (versioned / "trace.jsonl").exists()
        assert (versioned / "live.json").exists()
        assert "repro_sweep_runs_succeeded" in metrics_file.read_text()
        assert "trace:" in capsys.readouterr().err
        # The report command renders the trace this sweep left behind.
        assert main(["report", "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "accounted" in capsys.readouterr().out

    def test_no_trace_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert main(
            [
                "table3",
                "--cache-dir", str(tmp_path),
                "--no-trace",
            ]
        ) == 0
        assert not (tmp_path / "v1" / "trace.jsonl").exists()

    def test_stats_include_supervisor_fields(self, tmp_path, capsys):
        assert main(
            [
                "table3",
                "--cache-dir", str(tmp_path),
                "--run-timeout", "120",
                "--max-retries", "3",
            ]
        ) == 0
        document = json.loads((tmp_path / "engine-stats.json").read_text())
        for field in (
            "runs_succeeded", "quarantined", "timeouts", "crashes",
            "degradations", "failed_runs", "degraded_runs", "resumed",
        ):
            assert field in document
        assert document["run_timeout_s"] == 120.0
        assert document["max_retries"] == 3


class TestBatchingOptions:
    def _stats(self, tmp_path, *extra):
        assert main(["table3", "--cache-dir", str(tmp_path), *extra]) == 0
        return json.loads((tmp_path / "engine-stats.json").read_text())

    def test_flag_reaches_engine_stats(self, tmp_path, capsys):
        assert self._stats(tmp_path, "--batch-configs", "8")["batch_configs"] == 8

    def test_defaults_to_off(self, tmp_path, capsys):
        document = self._stats(tmp_path)
        assert document["batch_configs"] == 1
        assert document["batches"] == 0

    def test_env_fallback(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CONFIGS", "4")
        assert self._stats(tmp_path)["batch_configs"] == 4

    def test_flag_overrides_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CONFIGS", "4")
        assert self._stats(tmp_path, "--batch-configs", "2")["batch_configs"] == 2

    def test_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["table3", "--batch-configs", "0"])
        assert "--batch-configs must be >= 1" in capsys.readouterr().err

    def test_env_garbage_rejected_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CONFIGS", "many")
        with pytest.raises(SystemExit):
            main(["table3"])
        assert "REPRO_BATCH_CONFIGS must be an integer" in capsys.readouterr().err

    def test_env_zero_rejected_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CONFIGS", "0")
        with pytest.raises(SystemExit):
            main(["table3"])
        assert "--batch-configs must be >= 1" in capsys.readouterr().err


class TestKernelThreadsOption:
    def test_flag_exported_for_workers(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        assert main(["table3", "--kernel-threads", "2"]) == 0
        # Exported like --backend so worker processes inherit it.
        assert os.environ["REPRO_KERNEL_THREADS"] == "2"

    def test_flag_overrides_env(self, capsys, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_KERNEL_THREADS", "8")
        assert main(["table3", "--kernel-threads", "2"]) == 0
        assert os.environ["REPRO_KERNEL_THREADS"] == "2"

    def test_negative_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table3", "--kernel-threads", "-1"])
        assert "--kernel-threads must be >= 0" in capsys.readouterr().err

    def test_env_garbage_rejected_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "lots")
        with pytest.raises(SystemExit):
            main(["table3"])
        assert "REPRO_KERNEL_THREADS must be an integer" in capsys.readouterr().err
