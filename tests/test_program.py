"""Tests for the static program model."""

import numpy as np
import pytest

from repro.isa.instructions import InstructionTemplate, OpClass
from repro.workloads.program import (
    INSTRUCTION_BYTES,
    BasicBlock,
    LoopNest,
    LoopStep,
    MemoryStream,
    Phase,
    SyntheticProgram,
    TerminatorKind,
    mixture_weights,
)

from tests.conftest import make_micro_program


class TestMemoryStream:
    def test_valid(self):
        s = MemoryStream(base=0, footprint=1024, stride=8)
        assert s.random_fraction == 0.0

    def test_invalid_footprint(self):
        with pytest.raises(ValueError):
            MemoryStream(base=0, footprint=0, stride=8)

    def test_invalid_random_fraction(self):
        with pytest.raises(ValueError):
            MemoryStream(base=0, footprint=64, stride=8, random_fraction=2.0)

    def test_invalid_reuse(self):
        with pytest.raises(ValueError):
            MemoryStream(base=0, footprint=64, stride=8, reuse_shift=30)


class TestBasicBlock:
    def test_requires_instructions(self):
        with pytest.raises(ValueError):
            BasicBlock(block_id=0, templates=())

    def test_memory_spec_length_checked(self):
        with pytest.raises(ValueError):
            BasicBlock(
                block_id=0,
                templates=(InstructionTemplate(OpClass.IALU),),
                memory=(None, None),
            )

    def test_memory_instruction_needs_stream(self):
        with pytest.raises(ValueError):
            BasicBlock(
                block_id=0,
                templates=(InstructionTemplate(OpClass.LOAD),),
                memory=(None,),
            )

    def test_len(self):
        block = BasicBlock(
            block_id=0,
            templates=(
                InstructionTemplate(OpClass.IALU),
                InstructionTemplate(OpClass.NOP),
            ),
        )
        assert len(block) == 2


class TestLoopStructures:
    def test_loop_step_alt_consistency(self):
        with pytest.raises(ValueError):
            LoopStep(block=0, alt_probability=0.5)

    def test_loop_nest_needs_steps(self):
        with pytest.raises(ValueError):
            LoopNest(steps=())

    def test_loop_nest_trips_minimum(self):
        with pytest.raises(ValueError):
            LoopNest(steps=(LoopStep(block=0),), mean_trips=0.5)

    def test_phase_weight_validation(self):
        nest = LoopNest(steps=(LoopStep(block=0),))
        with pytest.raises(ValueError):
            Phase(name="p", nests=(nest,), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            Phase(name="p", nests=(nest,), weights=(-1.0,))


class TestSyntheticProgram:
    def test_block_ids_must_be_sequential(self):
        block = BasicBlock(
            block_id=1, templates=(InstructionTemplate(OpClass.IALU),)
        )
        nest = LoopNest(steps=(LoopStep(block=1),))
        with pytest.raises(ValueError):
            SyntheticProgram(
                name="bad",
                blocks=[block],
                phases=[Phase(name="p", nests=(nest,), weights=(1.0,))],
            )

    def test_flattened_arrays(self, micro_program):
        total = micro_program.num_static_instructions
        assert len(micro_program.flat_op) == total
        assert len(micro_program.flat_pc) == total
        assert micro_program.block_lens.sum() == total

    def test_pcs_contiguous_within_blocks(self, micro_program):
        for b in range(micro_program.num_blocks):
            start = micro_program.block_offsets[b]
            n = micro_program.block_lens[b]
            pcs = micro_program.flat_pc[start : start + n]
            assert np.array_equal(
                np.diff(pcs), np.full(n - 1, INSTRUCTION_BYTES)
            )

    def test_pcs_globally_unique(self, micro_program):
        pcs = micro_program.flat_pc
        assert len(np.unique(pcs)) == len(pcs)

    def test_block_pc_base_matches_flat(self, micro_program):
        for b in range(micro_program.num_blocks):
            offset = micro_program.block_offsets[b]
            assert micro_program.flat_pc[offset] == micro_program.block_pc_base[b]

    def test_phase_index(self, micro_program):
        assert micro_program.phase_index("alpha") == 0
        assert micro_program.phase_index("beta") == 1
        with pytest.raises(KeyError):
            micro_program.phase_index("gamma")

    def test_memory_arrays_for_non_memory_are_benign(self, micro_program):
        non_mem = micro_program.flat_op != int(OpClass.LOAD)
        non_mem &= micro_program.flat_op != int(OpClass.STORE)
        assert (micro_program.flat_mem_footprint[non_mem] == 1).all()


class TestMixtureWeights:
    def test_normalizes(self):
        w = mixture_weights([1.0, 3.0])
        assert w.tolist() == [0.25, 0.75]

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            mixture_weights([0.0, 0.0])
