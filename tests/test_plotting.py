"""Tests for the ASCII figure rendering."""

import pytest

from repro.analysis.plotting import (
    FAMILY_MARKERS,
    bar_chart,
    grouped_bar_chart,
    scatter_plot,
)


class TestScatterPlot:
    POINTS = [
        ("SimPoint", 10.0, 0.1),
        ("SMARTS", 30.0, 0.05),
        ("Run Z", 12.0, 2.5),
        ("Reduced", 35.0, 1.8),
    ]

    def test_contains_all_markers(self):
        text = scatter_plot(self.POINTS)
        for family, _, _ in self.POINTS:
            assert FAMILY_MARKERS[family] in text

    def test_legend_lists_families(self):
        text = scatter_plot(self.POINTS)
        assert "legend:" in text
        assert "P=SimPoint" in text

    def test_dimensions(self):
        text = scatter_plot(self.POINTS, width=40, height=10)
        lines = text.split("\n")
        plot_lines = [l for l in lines if l.startswith("|")]
        assert len(plot_lines) == 10
        assert all(len(l) == 41 for l in plot_lines)

    def test_log_x(self):
        text = scatter_plot(self.POINTS, log_x=True)
        assert "log scale" in text

    def test_single_point(self):
        text = scatter_plot([("SMARTS", 1.0, 1.0)])
        assert "S" in text

    def test_unknown_family_uses_initial(self):
        text = scatter_plot([("Mystery", 1.0, 1.0), ("Mystery", 2.0, 2.0)])
        assert "M=Mystery" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_plot([])
        with pytest.raises(ValueError):
            scatter_plot(self.POINTS, width=4)


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = text.split("\n")
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        text = bar_chart([("x", 3.25)])
        assert "3.25" in text

    def test_zero_values(self):
        text = bar_chart([("x", 0.0)])
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])


class TestGroupedBarChart:
    def test_shared_scale(self):
        groups = {
            "g1": [("a", 1.0)],
            "g2": [("b", 4.0)],
        }
        text = grouped_bar_chart(groups, width=8)
        lines = text.split("\n")
        a_line = next(l for l in lines if l.startswith("a"))
        b_line = next(l for l in lines if l.startswith("b"))
        assert a_line.count("#") == 2  # 1.0 / 4.0 of width 8
        assert b_line.count("#") == 8

    def test_group_headers(self):
        text = grouped_bar_chart({"alpha": [("x", 1.0)]})
        assert "-- alpha" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})
