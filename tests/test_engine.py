"""Tests for the parallel execution engine and its persistent store."""

import json
import os

import pytest

from repro.cpu.config import ARCH_CONFIGS, NLP, ProcessorConfig
from repro.cpu.stats import SimulationStats
from repro.engine import Engine, EngineRunError, RunRequest
from repro.engine.planner import Plan
from repro.engine.store import ResultStore
from repro.scale import Scale
from repro.techniques.base import SimulationTechnique, TechniqueResult
from repro.techniques.reference import ReferenceTechnique
from repro.techniques.registry import permutations
from repro.techniques.truncated import RunZ
from repro.workloads.spec import get_workload

SCALE = Scale(2)


def _stub_result(workload, config, tag="stub"):
    return TechniqueResult(
        family="Stub",
        permutation=tag,
        workload=workload,
        config_name=config.name,
        stats=SimulationStats(instructions=100, cycles=150, branches=10),
        regions=[(0, 100)],
        weights=[1.0],
        detailed_instructions=100,
    )


class StubTechnique(SimulationTechnique):
    """Cheap deterministic technique for engine plumbing tests."""

    family = "Stub"

    def __init__(self, tag="stub"):
        self.tag = tag

    @property
    def permutation(self):
        return self.tag

    def run(self, workload, config, scale, enhancements=None):
        return _stub_result(workload, config, self.tag)


class FlakyTechnique(SimulationTechnique):
    """Raises on the first attempt, succeeds on the retry.

    The first-attempt marker is a file, so the failure is observed even
    when the first attempt happens in a pool worker process.
    """

    family = "Stub"

    def __init__(self, marker_path):
        self.marker_path = str(marker_path)

    @property
    def permutation(self):
        return "flaky"

    def run(self, workload, config, scale, enhancements=None):
        if not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as handle:
                handle.write("attempted")
            raise RuntimeError("simulated worker failure")
        return _stub_result(workload, config, "flaky")


class BrokenTechnique(SimulationTechnique):
    """Fails every attempt."""

    family = "Stub"

    def __init__(self):
        pass

    @property
    def permutation(self):
        return "broken"

    def run(self, workload, config, scale, enhancements=None):
        raise RuntimeError("always broken")


@pytest.fixture()
def workload():
    return get_workload("gzip")


def _result_fingerprint(result):
    return (
        result.family,
        result.permutation,
        result.workload.name,
        result.config_name,
        tuple(sorted(result.stats.counters().items())),
        tuple(result.regions),
        tuple(result.weights),
        result.detailed_instructions,
        result.warm_detailed_instructions,
        result.functional_warm_instructions,
        result.fastforward_instructions,
        result.profiled_instructions,
        result.runs,
    )


class TestSerialization:
    def test_stats_round_trip(self):
        stats = SimulationStats(
            instructions=123, cycles=456, branches=7, mispredictions=2,
            dl1_accesses=50, dl1_misses=5, l2_accesses=5, l2_misses=1,
        )
        rebuilt = SimulationStats.from_dict(stats.counters())
        assert rebuilt == stats

    def test_stats_from_as_dict_ignores_derived(self):
        stats = SimulationStats(instructions=10, cycles=20)
        rebuilt = SimulationStats.from_dict(stats.as_dict())
        assert rebuilt.cpi == stats.cpi

    def test_stats_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            SimulationStats.from_dict({"warp_drives": 1})

    def test_result_round_trip_through_payload(self, workload):
        result = RunZ(500).run(workload, ARCH_CONFIGS[0], SCALE)
        rebuilt = TechniqueResult.from_payload(
            json.loads(json.dumps(result.to_payload()))
        )
        assert _result_fingerprint(rebuilt) == _result_fingerprint(result)

    def test_reduced_result_keeps_reduced_workload(self):
        # The reduced technique's result points at the *reduced*
        # workload; the payload must preserve that binding.
        from repro.techniques.reduced import ReducedInputTechnique

        workload = get_workload("gzip")
        result = ReducedInputTechnique("test").run(workload, ARCH_CONFIGS[0], SCALE)
        rebuilt = TechniqueResult.from_payload(result.to_payload())
        assert rebuilt.workload.input_set.name == "test"

    def test_store_round_trip(self, tmp_path, workload):
        result = RunZ(500).run(workload, ARCH_CONFIGS[0], SCALE)
        store = ResultStore(tmp_path)
        store.put("ab" * 32, result)
        loaded = store.get("ab" * 32)
        assert _result_fingerprint(loaded) == _result_fingerprint(result)
        assert "ab" * 32 in store
        assert len(store) == 1

    def test_store_corrupt_entry_is_miss(self, tmp_path, workload):
        store = ResultStore(tmp_path)
        key = "cd" * 32
        store.put(key, RunZ(500).run(workload, ARCH_CONFIGS[0], SCALE))
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None

    def test_store_embeds_payload_checksum(self, tmp_path, workload):
        from repro.engine.store import CHECKSUM_FIELD

        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put(key, RunZ(500).run(workload, ARCH_CONFIGS[0], SCALE))
        document = json.loads(store.path_for(key).read_text())
        assert CHECKSUM_FIELD in document

    def test_store_detects_silent_bit_rot(self, tmp_path, workload):
        """Valid JSON whose bytes drifted after the write must read as
        a miss (and be counted), not as a subtly-wrong result."""
        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put(key, RunZ(500).run(workload, ARCH_CONFIGS[0], SCALE))
        path = store.path_for(key)
        document = json.loads(path.read_text())
        document["stats"]["cycles"] += 1  # the silent flip
        path.write_text(json.dumps(document))
        assert store.get(key) is None
        assert store.consume_corrupt_entries() == 1
        assert store.consume_corrupt_entries() == 0  # drained

    def test_store_accepts_legacy_unchecksummed_entry(
        self, tmp_path, workload
    ):
        from repro.engine.store import CHECKSUM_FIELD

        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put(key, RunZ(500).run(workload, ARCH_CONFIGS[0], SCALE))
        path = store.path_for(key)
        document = json.loads(path.read_text())
        del document[CHECKSUM_FIELD]
        path.write_text(json.dumps(document))
        assert store.get(key) is not None
        assert store.consume_corrupt_entries() == 0

    def test_engine_regenerates_corrupt_entry(self, tmp_path, workload):
        request = RunRequest(RunZ(500), workload, ARCH_CONFIGS[0])
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        try:
            engine.run_many([request])
            key = request.content_key(SCALE)
            engine.store.path_for(key).write_text("garbage")
        finally:
            engine.close()

        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        try:
            results = engine.run_many([request])
            snapshot = engine.metrics.snapshot()
            regenerated = engine.store.get(key)
        finally:
            engine.close()
        assert results[0] is not None
        assert regenerated is not None  # rewritten, not left rotten
        assert snapshot["store_corrupt_entries"] == 1
        assert snapshot["runs_launched"] == 1  # re-executed, no hit


class TestPlanner:
    def test_deduplicates_preserving_order(self, workload):
        a = RunRequest(StubTechnique("a"), workload, ARCH_CONFIGS[0])
        b = RunRequest(StubTechnique("b"), workload, ARCH_CONFIGS[0])
        plan = Plan.build([a, b, a, b, a], SCALE)
        assert plan.num_unique == 2
        assert plan.num_requested == 5
        assert plan.slots == [0, 1, 0, 1, 0]
        assert plan.gather(["ra", "rb"]) == ["ra", "rb", "ra", "rb", "ra"]

    def test_content_key_sensitivity(self, workload):
        base = RunRequest(RunZ(500), workload, ARCH_CONFIGS[0])
        assert base.content_key(SCALE) == RunRequest(
            RunZ(500), workload, ARCH_CONFIGS[0]
        ).content_key(SCALE)
        # Every input dimension must move the key.
        assert base.content_key(SCALE) != base.content_key(Scale(3))
        assert base.content_key(SCALE) != RunRequest(
            RunZ(1000), workload, ARCH_CONFIGS[0]
        ).content_key(SCALE)
        assert base.content_key(SCALE) != RunRequest(
            RunZ(500), workload, ARCH_CONFIGS[1]
        ).content_key(SCALE)
        assert base.content_key(SCALE) != RunRequest(
            RunZ(500), workload, ARCH_CONFIGS[0], NLP
        ).content_key(SCALE)
        assert base.content_key(SCALE) != RunRequest(
            RunZ(500), get_workload("gzip", seed=7), ARCH_CONFIGS[0]
        ).content_key(SCALE)

    def test_config_value_change_invalidates_despite_same_name(self, workload):
        # A renamed-in-place config (same .name, different field) must
        # not alias the old cache entry.
        tweaked = ARCH_CONFIGS[0].replace(rob_entries=48)
        assert tweaked.name == ARCH_CONFIGS[0].name
        assert (
            RunRequest(RunZ(500), workload, tweaked).content_key(SCALE)
            != RunRequest(RunZ(500), workload, ARCH_CONFIGS[0]).content_key(SCALE)
        )


def _real_requests(workload):
    techniques = [
        ReferenceTechnique(),
        permutations("SimPoint")[1],
        permutations("SMARTS")[4],
        RunZ(500),
    ]
    return [
        RunRequest(technique, workload, config)
        for technique in techniques
        for config in ARCH_CONFIGS[:2]
    ]


class TestEngine:
    def test_duplicate_requests_run_once(self, workload):
        engine = Engine(scale=SCALE, jobs=1)
        request = RunRequest(StubTechnique(), workload, ARCH_CONFIGS[0])
        results = engine.run_many([request, request, request])
        assert engine.metrics.runs_launched == 1
        assert engine.metrics.runs_deduplicated == 2
        assert results[0] is results[1] is results[2]

    def test_repeat_call_hits_memory(self, workload):
        engine = Engine(scale=SCALE, jobs=1)
        request = RunRequest(StubTechnique(), workload, ARCH_CONFIGS[0])
        first = engine.run_many([request])[0]
        second = engine.run_many([request])[0]
        assert first is second
        assert engine.metrics.memory_hits == 1
        assert engine.metrics.runs_launched == 1

    def test_parallel_equals_serial(self, workload):
        serial = Engine(scale=SCALE, jobs=1).run_many(_real_requests(workload))
        parallel = Engine(scale=SCALE, jobs=2).run_many(_real_requests(workload))
        for a, b in zip(serial, parallel):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_persistent_cache_hits_across_engines(self, tmp_path, workload):
        requests = _real_requests(workload)
        first = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        results = first.run_many(requests)
        assert first.metrics.runs_launched == len(requests)

        second = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        cached = second.run_many(requests)
        assert second.metrics.runs_launched == 0
        assert second.metrics.cache_hits == len(requests)
        assert second.metrics.hit_rate == 1.0
        for a, b in zip(results, cached):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_cache_invalidated_by_config_change(self, tmp_path, workload):
        request = RunRequest(RunZ(500), workload, ARCH_CONFIGS[0])
        Engine(scale=SCALE, jobs=1, cache_dir=tmp_path).run_many([request])

        tweaked = RunRequest(
            RunZ(500), workload, ARCH_CONFIGS[0].replace(l2_size_kb=1024)
        )
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        engine.run_many([tweaked])
        assert engine.metrics.cache_hits == 0
        assert engine.metrics.runs_launched == 1

    def test_retry_recovers_serial(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=1)
        flaky = FlakyTechnique(tmp_path / "attempted.flag")
        result = engine.run_many(
            [RunRequest(flaky, workload, ARCH_CONFIGS[0])]
        )[0]
        assert result.permutation == "flaky"
        assert engine.metrics.retries == 1
        assert engine.metrics.failures == 0

    def test_retry_recovers_parallel(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=2)
        flaky = FlakyTechnique(tmp_path / "attempted-parallel.flag")
        requests = [
            RunRequest(flaky, workload, ARCH_CONFIGS[0]),
            RunRequest(StubTechnique("ok1"), workload, ARCH_CONFIGS[0]),
            RunRequest(StubTechnique("ok2"), workload, ARCH_CONFIGS[0]),
        ]
        results = engine.run_many(requests)
        assert [r.permutation for r in results] == ["flaky", "ok1", "ok2"]
        assert engine.metrics.retries == 1
        assert engine.metrics.failures == 0

    def test_failures_surface_without_killing_sweep(self, workload):
        engine = Engine(scale=SCALE, jobs=1)
        requests = [
            RunRequest(StubTechnique("good"), workload, ARCH_CONFIGS[0]),
            RunRequest(BrokenTechnique(), workload, ARCH_CONFIGS[0]),
            RunRequest(StubTechnique("also good"), workload, ARCH_CONFIGS[0]),
        ]
        with pytest.raises(EngineRunError) as excinfo:
            engine.run_many(requests)
        assert "broken" in str(excinfo.value)
        # The sweep completed: both healthy runs were executed and
        # cached; the broken run failed identically twice, so it was
        # quarantined rather than retried to budget exhaustion.
        assert engine.metrics.runs_launched == 3
        assert engine.metrics.runs_succeeded == 2
        assert engine.metrics.failures + engine.metrics.quarantined == 1
        assert engine.metrics.quarantined == 1
        assert engine.metrics.retries == 1  # the one retry was spent
        assert engine.metrics.runs_launched == (
            engine.metrics.runs_succeeded
            + engine.metrics.failures
            + engine.metrics.quarantined
        )

        results = engine.run_many(requests, allow_errors=True)
        assert results[0] is not None and results[2] is not None
        assert results[1] is None

    def test_write_stats(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        engine.run_many([RunRequest(StubTechnique(), workload, ARCH_CONFIGS[0])])
        path = engine.write_stats()
        assert path == tmp_path / "engine-stats.json"
        document = json.loads(path.read_text())
        assert document["runs_launched"] == 1
        assert document["jobs"] == 1
        assert document["scale"] == SCALE.instructions_per_m
        assert "Stub" in document["per_family"]

    def test_write_stats_without_store_needs_path(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=1)
        engine.run_many([RunRequest(StubTechnique(), workload, ARCH_CONFIGS[0])])
        assert engine.write_stats() is None
        explicit = engine.write_stats(tmp_path / "stats.json")
        assert explicit is not None and explicit.exists()


class TestSharedStores:
    """The engine's trace store + warm-state checkpoints: compact
    submission, counter plumbing, and bit-identical acceleration."""

    def _warmed_requests(self, workload):
        from repro.techniques.truncated import FFRunZ, FFWURunZ

        lat_variant = ARCH_CONFIGS[0].replace(
            l2_latency=ARCH_CONFIGS[0].l2_latency + 5
        )
        return [
            RunRequest(FFRunZ(400, 200, warmed=True), workload, ARCH_CONFIGS[0]),
            RunRequest(FFRunZ(400, 200, warmed=True), workload, lat_variant),
            RunRequest(FFWURunZ(300, 100, 200, warmed=True), workload, ARCH_CONFIGS[0]),
        ]

    def test_stats_expose_reuse_counters(self, tmp_path, workload):
        from repro.workloads.inputs import clear_trace_cache

        clear_trace_cache()
        engine = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path, checkpoint_interval=100.0
        )
        try:
            engine.run_many(self._warmed_requests(workload))
            document = json.loads(engine.write_stats().read_text())
        finally:
            engine.close()
        # The warmed runs share one trace (generated once, stored) and
        # one checkpoint chain: the latency variant and the FF+WU run
        # resume from checkpoints the first run wrote.
        assert document["trace_cache_misses"] >= 1
        assert document["checkpoint_misses"] >= 1
        assert document["checkpoint_hits"] >= 1
        assert document["instructions_skipped"] > 0
        assert document["checkpoint_interval_m"] == 100.0
        assert document["trace_cache"] is True
        assert (tmp_path / "traces").is_dir()
        assert (tmp_path / "checkpoints").is_dir()

    def test_acceleration_is_bit_identical(self, tmp_path, workload):
        requests = self._warmed_requests(workload)
        plain = Engine(
            scale=SCALE, jobs=1, checkpoint_interval=0.0, trace_cache=False
        )
        baseline = plain.run_many(requests)

        accelerated = Engine(
            scale=SCALE, jobs=2, cache_dir=tmp_path, checkpoint_interval=100.0
        )
        try:
            results = accelerated.run_many(requests)
        finally:
            accelerated.close()
        for a, b in zip(baseline, results):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_resume_with_stores_is_bit_identical(self, tmp_path, workload):
        requests = self._warmed_requests(workload) + _real_requests(workload)
        first = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path, checkpoint_interval=100.0
        )
        results = first.run_many(requests)
        first.close()

        resumed_engine = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path,
            checkpoint_interval=100.0, resume=True,
        )
        try:
            resumed = resumed_engine.run_many(requests)
            assert resumed_engine.metrics.runs_launched == 0
            assert resumed_engine.metrics.resumed == len(
                {r.content_key(SCALE) for r in requests}
            )
        finally:
            resumed_engine.close()
        for a, b in zip(results, resumed):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_close_restores_environment(self, tmp_path, workload):
        from repro.cpu import checkpoint
        from repro.workloads import trace_store

        engine = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path, checkpoint_interval=100.0
        )
        assert os.environ[trace_store.TRACE_DIR_ENV_VAR] == str(
            tmp_path / "traces"
        )
        assert os.environ[checkpoint.CHECKPOINT_DIR_ENV_VAR] == str(
            tmp_path / "checkpoints"
        )
        engine.close()
        assert trace_store.TRACE_DIR_ENV_VAR not in os.environ
        assert checkpoint.CHECKPOINT_DIR_ENV_VAR not in os.environ
        assert checkpoint.CHECKPOINT_INTERVAL_ENV_VAR not in os.environ

    def test_knob_gating(self, tmp_path):
        from repro.cpu import checkpoint
        from repro.workloads import trace_store

        engine = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path,
            checkpoint_interval=0.0, trace_cache=False,
        )
        try:
            assert trace_store.TRACE_DIR_ENV_VAR not in os.environ
            assert checkpoint.CHECKPOINT_DIR_ENV_VAR not in os.environ
        finally:
            engine.close()
        with pytest.raises(ValueError):
            Engine(scale=SCALE, jobs=1, checkpoint_interval=-1.0)


def _latency_sweep(workload, count=4):
    """Same-geometry latency variants under one batchable technique."""
    base = ARCH_CONFIGS[0]
    configs = [base] + [
        base.replace(
            name=f"lat{i}",
            l2_latency=base.l2_latency + 1 + i,
            mem_latency_first=base.mem_latency_first + 10 * i,
        )
        for i in range(1, count)
    ]
    return [
        RunRequest(ReferenceTechnique(), workload, config)
        for config in configs
    ]


class TestConfigBatching:
    """Engine-level config batching: grouping by batch key, parity with
    unbatched execution, fault isolation, and counter plumbing."""

    def test_batched_matches_unbatched(self, workload):
        requests = _latency_sweep(workload)
        baseline = Engine(scale=SCALE, jobs=1).run_many(requests)
        engine = Engine(scale=SCALE, jobs=1, batch_configs=4)
        results = engine.run_many(requests)
        assert engine.metrics.batches == 1
        assert engine.metrics.batched_runs == len(requests)
        for a, b in zip(baseline, results):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_batched_matches_unbatched_parallel(self, workload):
        requests = _latency_sweep(workload, count=6)
        baseline = Engine(scale=SCALE, jobs=1).run_many(requests)
        engine = Engine(scale=SCALE, jobs=2, batch_configs=3)
        results = engine.run_many(requests)
        assert engine.metrics.batches == 2
        assert engine.metrics.batched_runs == len(requests)
        for a, b in zip(baseline, results):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_batch_keys_group_trace_level(self, workload):
        # Batch keys are trace-level: the same technique permutation
        # groups even across geometries (the batched path re-groups by
        # geometry internally).  Different permutations yield different
        # keys; NLP enhancements never batch.
        requests = [
            RunRequest(ReferenceTechnique(), workload, ARCH_CONFIGS[0]),
            RunRequest(ReferenceTechnique(), workload, ARCH_CONFIGS[1]),
            RunRequest(RunZ(500), workload, ARCH_CONFIGS[0]),
            RunRequest(
                ReferenceTechnique(), workload, ARCH_CONFIGS[0],
                enhancements=NLP,
            ),
        ]
        baseline = Engine(scale=SCALE, jobs=1).run_many(requests)
        engine = Engine(scale=SCALE, jobs=1, batch_configs=8)
        results = engine.run_many(requests)
        assert engine.metrics.batches == 1  # the two reference runs
        assert engine.metrics.batched_runs == 2
        assert engine.metrics.runs_succeeded == len(requests)
        for a, b in zip(baseline, results):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_unbatchable_technique_not_grouped(self, workload):
        requests = [
            RunRequest(StubTechnique(f"s{i}"), workload, ARCH_CONFIGS[0])
            for i in range(3)
        ]
        engine = Engine(scale=SCALE, jobs=1, batch_configs=8)
        engine.run_many(requests)
        assert engine.metrics.batches == 0

    def test_batch_member_fault_degrades_alone(self, workload, monkeypatch):
        # A fault inside one member of a batch explodes the batch back
        # into singletons; only the faulted member takes the retry /
        # degradation path and every run still succeeds.
        monkeypatch.setenv("REPRO_FAULT_PLAN", "exc@2x*")
        requests = _latency_sweep(workload)
        engine = Engine(scale=SCALE, jobs=1, batch_configs=4, retries=0)
        results = engine.run_many(requests, allow_errors=True)
        assert [r is None for r in results] == [False, False, True, False]
        assert engine.metrics.runs_succeeded == len(requests) - 1
        assert engine.metrics.failures == 1
        assert engine.metrics.batches == 0  # exploded batches don't count

    def test_batched_store_resume_is_bit_identical(self, tmp_path, workload):
        requests = _latency_sweep(workload)
        first = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, batch_configs=4)
        results = first.run_many(requests)
        first.close()

        resumed_engine = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path,
            batch_configs=4, resume=True,
        )
        try:
            resumed = resumed_engine.run_many(requests)
            assert resumed_engine.metrics.runs_launched == 0
            assert resumed_engine.metrics.resumed == len(requests)
        finally:
            resumed_engine.close()
        for a, b in zip(results, resumed):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_partial_store_regroups_remainder(self, tmp_path, workload):
        # Two runs already persisted: a later batched sweep serves them
        # from cache and batches only the remaining members.
        requests = _latency_sweep(workload)
        seed = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path)
        seed.run_many(requests[:2])
        seed.close()

        baseline = Engine(scale=SCALE, jobs=1).run_many(requests)
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, batch_configs=4)
        try:
            results = engine.run_many(requests)
            assert engine.metrics.cache_hits == 2
            assert engine.metrics.batches == 1
            assert engine.metrics.batched_runs == 2
        finally:
            engine.close()
        for a, b in zip(baseline, results):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_stats_expose_batch_counters(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, batch_configs=4)
        try:
            engine.run_many(_latency_sweep(workload))
            document = json.loads(engine.write_stats().read_text())
        finally:
            engine.close()
        assert document["batch_configs"] == 4
        assert document["batches"] == 1
        assert document["batched_runs"] == 4
        assert document["configs_per_batch"] == 4.0

    def test_batch_configs_validation(self):
        with pytest.raises(ValueError):
            Engine(scale=SCALE, jobs=1, batch_configs=0)


class TestWorkloadStripping:
    """Registry workloads ship to workers as compact keys, not pickles."""

    def test_registry_workload_is_stripped(self, workload):
        from repro.engine.executor import RunTask, _strip_workload

        task = RunTask(
            slot=0,
            request=RunRequest(RunZ(500), workload, ARCH_CONFIGS[0]),
            key="k",
        )
        stripped = _strip_workload(task)
        assert stripped.request.workload is None
        assert stripped.workload_key == ("gzip", "reference", workload.seed)
        # The original task is untouched (the parent keeps using it).
        assert task.request.workload is workload

    def test_custom_workload_is_not_stripped(self):
        from repro.engine.executor import RunTask, _strip_workload
        from tests.conftest import make_micro_workload

        custom = make_micro_workload()
        task = RunTask(
            slot=0,
            request=RunRequest(RunZ(500), custom, ARCH_CONFIGS[0]),
            key="k",
        )
        stripped = _strip_workload(task)
        assert stripped.request.workload is custom
        assert stripped.workload_key is None

    def test_worker_rebinds_stripped_workload(self, workload):
        from repro.engine.executor import RunTask, _strip_workload, _worker

        request = RunRequest(RunZ(500), workload, ARCH_CONFIGS[0])
        task = RunTask(slot=3, request=request, key="k")
        slot, result, wall, reuse, resources = _worker(
            _strip_workload(task), SCALE
        )
        assert slot == 3
        direct = RunZ(500).run(workload, ARCH_CONFIGS[0], SCALE)
        assert _result_fingerprint(result) == _result_fingerprint(direct)
        assert isinstance(reuse, dict)
        assert resources is None or "cpu_s" in resources


class TestContextIntegration:
    def test_context_run_many_matches_run(self, workload):
        from repro.experiments.common import ExperimentContext

        context = ExperimentContext(
            scale=SCALE, benchmarks=("gzip",), depth="quick"
        )
        request = RunRequest(RunZ(500), workload, ARCH_CONFIGS[0])
        batch = context.run_many([request])[0]
        single = context.run(RunZ(500), workload, ARCH_CONFIGS[0])
        assert batch is single  # one execution, shared through the engine
