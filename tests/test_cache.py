"""Tests for caches, TLBs and the memory model."""

import pytest

from repro.cpu.cache import Cache, MainMemory, TLB


def make_memory():
    return MainMemory(latency_first=100, latency_next=5, bus_width=8)


def make_l1(memory=None, **kwargs):
    defaults = dict(
        name="l1", size_bytes=1024, assoc=2, block_bytes=32, hit_latency=1,
        memory=memory or make_memory(),
    )
    defaults.update(kwargs)
    return Cache(**defaults)


class TestMainMemory:
    def test_fill_latency_burst(self):
        memory = make_memory()
        # 32-byte block over an 8-byte bus: 4 beats.
        assert memory.fill_latency(32) == 100 + 3 * 5

    def test_single_beat(self):
        assert make_memory().fill_latency(8) == 100

    def test_access_counts(self):
        memory = make_memory()
        memory.access(32)
        memory.access(32)
        assert memory.accesses == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            MainMemory(0, 5, 8)


class TestCacheGeometry:
    def test_set_count_power_of_two_required(self):
        with pytest.raises(ValueError, match="power of two"):
            Cache("bad", 96, 1, 32, 1, memory=make_memory())

    def test_block_power_of_two(self):
        with pytest.raises(ValueError):
            Cache("bad", 1024, 2, 24, 1, memory=make_memory())

    def test_needs_backing(self):
        with pytest.raises(ValueError):
            Cache("orphan", 1024, 2, 32, 1)


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        l1 = make_l1()
        first = l1.access(0x1000)
        second = l1.access(0x1000)
        assert first > second
        assert second == l1.hit_latency
        assert l1.misses == 1 and l1.hits == 1

    def test_same_block_hits(self):
        l1 = make_l1()
        l1.access(0x1000)
        assert l1.access(0x101F) == l1.hit_latency  # same 32B block

    def test_next_block_misses(self):
        l1 = make_l1()
        l1.access(0x1000)
        assert l1.access(0x1020) > l1.hit_latency

    def test_lru_eviction(self):
        l1 = make_l1()  # 1024B, 2-way, 32B blocks -> 16 sets
        # Three blocks mapping to the same set (stride = 16 sets * 32B).
        a, b, c = 0x0, 16 * 32, 2 * 16 * 32
        l1.access(a)
        l1.access(b)
        l1.access(c)  # evicts a (LRU)
        assert not l1.contains(a)
        assert l1.contains(b) and l1.contains(c)

    def test_lru_updated_on_hit(self):
        l1 = make_l1()
        a, b, c = 0x0, 16 * 32, 2 * 16 * 32
        l1.access(a)
        l1.access(b)
        l1.access(a)  # a becomes MRU
        l1.access(c)  # evicts b
        assert l1.contains(a)
        assert not l1.contains(b)

    def test_miss_latency_includes_memory(self):
        memory = make_memory()
        l1 = make_l1(memory=memory)
        latency = l1.access(0x4000)
        assert latency == l1.hit_latency + memory.fill_latency(32)

    def test_hierarchy_l1_l2(self):
        memory = make_memory()
        l2 = Cache("l2", 8192, 4, 64, 10, memory=memory)
        l1 = Cache("l1", 1024, 2, 32, 1, parent=l2)
        cold = l1.access(0x8000)
        assert cold == 1 + 10 + memory.fill_latency(64)
        # Sibling L1 block within the same L2 block: L2 hit.
        warm = l1.access(0x8020)
        assert warm == 1 + 10

    def test_warm_updates_without_stats_effects(self):
        l1 = make_l1()
        l1.warm(0x2000)
        assert l1.contains(0x2000)
        # warm() counts no hits/misses.
        assert l1.hits == 0 and l1.misses == 0
        assert l1.access(0x2000) == l1.hit_latency

    def test_reset_stats(self):
        l1 = make_l1()
        l1.access(0x0)
        l1.reset_stats()
        assert l1.accesses == 0

    def test_rates(self):
        l1 = make_l1()
        assert l1.miss_rate == 0.0 and l1.hit_rate == 0.0
        l1.access(0x0)
        l1.access(0x0)
        assert l1.miss_rate == pytest.approx(0.5)
        assert l1.hit_rate == pytest.approx(0.5)


class TestNextLinePrefetch:
    def test_prefetch_inserts_next_block(self):
        l1 = make_l1(next_line_prefetch=True)
        l1.access(0x1000)  # miss -> prefetch 0x1020
        assert l1.contains(0x1020)
        assert l1.prefetches == 1
        assert l1.access(0x1020) == l1.hit_latency

    def test_prefetch_propagates_to_parent(self):
        memory = make_memory()
        l2 = Cache("l2", 8192, 4, 64, 10, memory=memory)
        l1 = Cache("l1", 1024, 2, 32, 1, parent=l2, next_line_prefetch=True)
        l1.access(0x1000)
        assert l2.contains(0x1020)

    def test_no_prefetch_when_disabled(self):
        l1 = make_l1()
        l1.access(0x1000)
        assert not l1.contains(0x1020)
        assert l1.prefetches == 0


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB("dtlb", entries=16, miss_latency=30)
        assert tlb.access(0x1234) == 30
        assert tlb.access(0x1FFF) == 0  # same 4K page
        assert tlb.access(0x2000) == 30  # next page

    def test_capacity_eviction(self):
        tlb = TLB("dtlb", entries=4, miss_latency=30, assoc=4)
        for page in range(5):
            tlb.access(page * 4096)
        # Page 0 was evicted.
        assert tlb.access(0) == 30

    def test_stats(self):
        tlb = TLB("itlb", entries=8, miss_latency=20)
        tlb.access(0)
        tlb.access(0)
        assert tlb.hits == 1 and tlb.misses == 1
        tlb.reset_stats()
        assert tlb.hits == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            TLB("bad", entries=0, miss_latency=30)

    def test_warm_counts_no_stats(self):
        tlb = TLB("dtlb", entries=16, miss_latency=30)
        tlb.warm(0x1234)
        assert tlb.hits == 0 and tlb.misses == 0
        # ... but the translation is installed: the next access hits.
        assert tlb.access(0x1000) == 0
        assert tlb.hits == 1 and tlb.misses == 0

    def test_warm_matches_access_replacement(self):
        # Functional warming must train exactly the state that detailed
        # accesses would, so a probe sequence sees identical hit/miss
        # behaviour afterwards.
        pages = [0, 1, 2, 3, 1, 4, 0, 2, 5, 1]
        warmed = TLB("dtlb", entries=4, miss_latency=30, assoc=4)
        accessed = TLB("dtlb", entries=4, miss_latency=30, assoc=4)
        for page in pages:
            warmed.warm(page * 4096)
            accessed.access(page * 4096)
        accessed.reset_stats()
        for page in range(6):
            assert warmed.access(page * 4096) == accessed.access(page * 4096)
        assert (warmed.hits, warmed.misses) == (accessed.hits, accessed.misses)
