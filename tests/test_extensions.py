"""Tests for the extension techniques: random sampling and early
SimPoint points (features the paper mentions but does not evaluate)."""

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.techniques import RandomSamplingTechnique, SimPointTechnique
from repro.techniques.reference import ReferenceTechnique

from tests.conftest import TEST_SCALE, make_micro_workload

CONFIG = ARCH_CONFIGS[0]


@pytest.fixture(scope="module")
def workload():
    return make_micro_workload(length_m=800, seed=55)


class TestRandomSampling:
    def test_regions_sorted_disjoint(self, workload):
        technique = RandomSamplingTechnique(num_samples=10, sample_m=10)
        regions = technique.choose_regions(
            len(workload.trace(TEST_SCALE)), TEST_SCALE
        )
        previous_end = 0
        for start, end in regions:
            assert start >= previous_end
            assert end > start
            previous_end = end

    def test_regions_deterministic_per_seed(self, workload):
        length = len(workload.trace(TEST_SCALE))
        a = RandomSamplingTechnique(10, 10, seed=1).choose_regions(length, TEST_SCALE)
        b = RandomSamplingTechnique(10, 10, seed=1).choose_regions(length, TEST_SCALE)
        c = RandomSamplingTechnique(10, 10, seed=2).choose_regions(length, TEST_SCALE)
        assert a == b
        assert a != c

    def test_sample_count_capped_by_trace(self, workload):
        technique = RandomSamplingTechnique(num_samples=10_000, sample_m=10)
        regions = technique.choose_regions(
            len(workload.trace(TEST_SCALE)), TEST_SCALE
        )
        assert len(regions) < 10_000

    def test_estimates_cpi(self, workload):
        reference = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)
        technique = RandomSamplingTechnique(
            num_samples=20, sample_m=20, warmup_m=10
        )
        result = technique.run(workload, CONFIG, TEST_SCALE)
        assert result.cpi == pytest.approx(reference.cpi, rel=0.20)
        assert result.detailed_instructions < len(workload.trace(TEST_SCALE))

    def test_more_samples_do_not_hurt(self, workload):
        """Conte et al.'s remedy: more samples reduce (or hold) error."""
        reference = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)

        def error(n):
            result = RandomSamplingTechnique(
                num_samples=n, sample_m=10, warmup_m=10
            ).run(workload, CONFIG, TEST_SCALE)
            return abs(result.cpi - reference.cpi) / reference.cpi

        assert error(40) <= error(3) + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSamplingTechnique(0, 10)
        with pytest.raises(ValueError):
            RandomSamplingTechnique(10, 0)


class TestEarlySimPoints:
    def test_early_points_not_later_than_medoids(self, workload):
        base = SimPointTechnique(interval_m=20, max_k=10)
        early = SimPointTechnique(interval_m=20, max_k=10, early_points=True)
        sel_base = base.select(workload, TEST_SCALE)
        sel_early = early.select(workload, TEST_SCALE)
        assert sum(sel_early.intervals) <= sum(sel_base.intervals)
        assert len(sel_early.intervals) == len(sel_base.intervals)

    def test_early_points_label(self):
        technique = SimPointTechnique(10, 100, early_points=True)
        assert "early" in technique.permutation

    def test_early_points_still_accurate(self, workload):
        reference = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)
        technique = SimPointTechnique(
            interval_m=100, max_k=8, warmup_m=20, early_points=True
        )
        result = technique.run(workload, CONFIG, TEST_SCALE)
        assert result.cpi == pytest.approx(reference.cpi, rel=0.2)
