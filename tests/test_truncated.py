"""Tests for Run Z, FF X + Run Z and FF X + WU Y + Run Z."""

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.techniques.truncated import FFRunZ, FFWURunZ, RunZ, _clamp_region

from tests.conftest import TEST_SCALE, make_micro_workload

CONFIG = ARCH_CONFIGS[0]


@pytest.fixture(scope="module")
def workload():
    return make_micro_workload(length_m=800, seed=3)


class TestClamping:
    def test_within_trace(self):
        assert _clamp_region(1000, 100, 200) == (100, 200)

    def test_end_clamped(self):
        assert _clamp_region(150, 100, 200) == (100, 150)

    def test_start_past_end_shifts_window(self):
        start, end = _clamp_region(100, 500, 600)
        assert 0 <= start < end <= 100

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            _clamp_region(0, 0, 0)


class TestRunZ:
    def test_measures_prefix(self, workload):
        result = RunZ(100).run(workload, CONFIG, TEST_SCALE)
        expected = TEST_SCALE.instructions(100)
        assert result.regions == [(0, expected)]
        assert result.stats.instructions == expected
        assert result.fastforward_instructions == 0

    def test_permutation_label(self):
        assert RunZ(500).permutation == "Run 500M"

    def test_invalid_z(self):
        with pytest.raises(ValueError):
            RunZ(0)

    def test_longer_z_changes_estimate(self, workload):
        short = RunZ(50).run(workload, CONFIG, TEST_SCALE)
        long = RunZ(700).run(workload, CONFIG, TEST_SCALE)
        assert short.cpi != long.cpi


class TestFFRunZ:
    def test_region_offset(self, workload):
        result = FFRunZ(200, 100).run(workload, CONFIG, TEST_SCALE)
        start = TEST_SCALE.instructions(200)
        assert result.regions == [(start, start + TEST_SCALE.instructions(100))]
        assert result.fastforward_instructions == start
        assert result.warm_detailed_instructions == 0

    def test_cold_state_after_ff(self, workload):
        """FF leaves microarchitectural state cold: the same window
        measured with warm-up must be faster."""
        cold = FFRunZ(400, 100).run(workload, CONFIG, TEST_SCALE)
        warm = FFWURunZ(300, 100, 100).run(workload, CONFIG, TEST_SCALE)
        # Same measured region ([400M, 500M)) modulo warm-up.
        assert warm.regions == cold.regions
        assert warm.cpi < cold.cpi

    def test_invalid(self):
        with pytest.raises(ValueError):
            FFRunZ(0, 100)


class TestFFWURunZ:
    def test_work_profile(self, workload):
        result = FFWURunZ(100, 50, 100).run(workload, CONFIG, TEST_SCALE)
        assert result.warm_detailed_instructions == TEST_SCALE.instructions(50)
        assert result.fastforward_instructions == TEST_SCALE.instructions(100)
        assert result.detailed_instructions == TEST_SCALE.instructions(100)

    def test_label(self):
        technique = FFWURunZ(999, 1, 1000)
        assert technique.permutation == "FF 999M + WU 1M + Run 1000M"

    def test_invalid(self):
        with pytest.raises(ValueError):
            FFWURunZ(100, 0, 100)

    def test_families_distinct(self):
        assert RunZ(1).family != FFRunZ(1, 1).family != FFWURunZ(1, 1, 1).family
