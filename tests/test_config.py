"""Tests for ProcessorConfig, PB parameters and Table 3."""

import dataclasses

import pytest

from repro.cpu.config import (
    ARCH_CONFIGS,
    BASELINE,
    NLP,
    PB_PARAMETERS,
    TC,
    Enhancements,
    ProcessorConfig,
    pb_config,
)


class TestProcessorConfig:
    def test_defaults_valid(self):
        config = ProcessorConfig()
        assert config.issue_width == 4

    def test_replace(self):
        config = ProcessorConfig().replace(rob_entries=128)
        assert config.rob_entries == 128
        assert ProcessorConfig().rob_entries == 64  # original untouched

    def test_positive_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(rob_entries=0)
        with pytest.raises(ValueError):
            ProcessorConfig(mem_latency_first=-1)

    def test_block_power_of_two(self):
        with pytest.raises(ValueError):
            ProcessorConfig(dl1_block=48)

    def test_predictor_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(branch_predictor="tage")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ProcessorConfig().rob_entries = 1


class TestPBParameters:
    def test_exactly_43(self):
        assert len(PB_PARAMETERS) == 43

    def test_unique_names(self):
        names = [p.name for p in PB_PARAMETERS]
        assert len(set(names)) == 43

    def test_names_are_config_fields(self):
        fields = {f.name for f in dataclasses.fields(ProcessorConfig)}
        for parameter in PB_PARAMETERS:
            assert parameter.name in fields

    def test_low_below_high(self):
        for parameter in PB_PARAMETERS:
            assert parameter.low < parameter.high

    def test_value_levels(self):
        parameter = PB_PARAMETERS[0]
        assert parameter.value(-1) == parameter.low
        assert parameter.value(1) == parameter.high
        with pytest.raises(ValueError):
            parameter.value(0)

    def test_pb_config_applies_levels(self):
        levels = [1] * 43
        config = pb_config(levels)
        for parameter in PB_PARAMETERS:
            assert getattr(config, parameter.name) == parameter.high

    def test_pb_config_all_low_valid(self):
        config = pb_config([-1] * 43)
        for parameter in PB_PARAMETERS:
            assert getattr(config, parameter.name) == parameter.low

    def test_pb_config_length_checked(self):
        with pytest.raises(ValueError):
            pb_config([1] * 42)

    def test_pb_config_names_unique(self):
        a = pb_config([1] * 43)
        b = pb_config([-1] + [1] * 42)
        assert a.name != b.name


class TestArchConfigs:
    def test_four_configs(self):
        assert len(ARCH_CONFIGS) == 4

    def test_names(self):
        assert [c.name for c in ARCH_CONFIGS] == [
            "config1", "config2", "config3", "config4",
        ]

    def test_monotone_scaling(self):
        # Table 3's structures grow monotonically from config1 to 4.
        for field in ("bht_entries", "rob_entries", "lsq_entries",
                      "dl1_size_kb", "l2_size_kb", "mem_latency_first"):
            values = [getattr(c, field) for c in ARCH_CONFIGS]
            assert values == sorted(values)
            assert values[0] < values[-1]

    def test_widths(self):
        assert ARCH_CONFIGS[0].issue_width == 4
        assert ARCH_CONFIGS[3].issue_width == 8


class TestEnhancements:
    def test_labels(self):
        assert BASELINE.label == "base"
        assert TC.label == "TC"
        assert NLP.label == "NLP"
        assert Enhancements(True, True).label == "TC+NLP"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BASELINE.trivial_computation = True
