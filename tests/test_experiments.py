"""Smoke tests for the experiment drivers (micro scale)."""

import pytest

from repro.experiments.common import (
    ExperimentContext,
    ExperimentReport,
    format_table,
)
from repro.experiments import figure6, figure7, survey, tables
from repro.scale import Scale
from repro.techniques.truncated import RunZ


@pytest.fixture(scope="module")
def context():
    # Micro scale, one cheap benchmark, one permutation per family.
    return ExperimentContext(scale=Scale(3), benchmarks=("gzip",), depth="quick")


class TestContext:
    def test_depth_validated(self):
        with pytest.raises(ValueError):
            ExperimentContext(depth="exhaustive")

    def test_run_cache(self, context):
        from repro.cpu.config import ARCH_CONFIGS

        workload = context.workload("gzip")
        technique = RunZ(100)
        a = context.run(technique, workload, ARCH_CONFIGS[0])
        b = context.run(technique, workload, ARCH_CONFIGS[0])
        assert a is b

    def test_family_permutations_depths(self, context):
        quick = context.family_permutations("gzip")
        assert all(len(v) >= 1 for v in quick.values())
        full = ExperimentContext(depth="full").family_permutations("gzip")
        assert len(full["FF+WU+Run Z"]) == 36

    def test_run_many_batches_through_engine(self, context):
        from repro.cpu.config import ARCH_CONFIGS
        from repro.engine import RunRequest

        workload = context.workload("gzip")
        requests = [
            RunRequest(RunZ(100), workload, config)
            for config in ARCH_CONFIGS[:2]
        ]
        results = context.run_many(requests)
        assert len(results) == 2
        assert {r.config_name for r in results} == {"config1", "config2"}
        # run() afterwards is a pure cache hit on the same objects.
        assert context.run(RunZ(100), workload, ARCH_CONFIGS[0]) is results[0]


class TestReportFormatting:
    def test_format_table_aligns(self):
        text = format_table(("a", "bb"), [(1, 2.5), ("xyz", 3)])
        lines = text.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_right_aligns_numeric_columns(self):
        text = format_table(
            ("name", "cpi"), [("gzip", 1.5), ("gcc", 12.25)]
        )
        lines = text.split("\n")
        # The numeric column lines up on its right edge.
        assert lines[0].endswith("cpi")
        assert lines[2].endswith("1.5")
        assert lines[3].endswith("12.25")
        assert len(lines[2]) == len(lines[3])
        # The text column stays left-aligned.
        assert lines[2].startswith("gzip")

    def test_format_table_mixed_column_stays_left(self):
        text = format_table(("x",), [(1,), ("n/a",)])
        lines = text.split("\n")
        assert lines[2].startswith("1")

    def test_report_render(self):
        report = ExperimentReport(
            experiment_id="X", title="t", headers=("h",), rows=[("v",)],
            notes=["n"],
        )
        text = report.render()
        assert "== X: t ==" in text
        assert "note: n" in text


class TestCheapDrivers:
    def test_table1(self):
        report = tables.table1()
        assert len(report.rows) == 69 - 0  # all five reduced sets listed
        assert report.headers == ("family", "permutation")

    def test_table2(self):
        report = tables.table2()
        assert len(report.rows) == 10

    def test_table3(self):
        report = tables.table3()
        assert len(report.rows) == 4

    def test_survey(self):
        report = survey.run()
        assert any("FF X + Run Z" in str(row[0]) for row in report.rows)

    def test_figure7(self):
        report = figure7.run()
        assert any("SMARTS" in str(row[1]) for row in report.rows)


class TestFigure6Driver:
    def test_speedup_rows(self, context):
        report = figure6.run(context)
        # NLP and TC sections, one row per permutation per enhancement.
        enhancements = {row[0] for row in report.rows}
        assert enhancements == {"NLP", "TC"}
        for row in report.rows:
            difference = row[5]
            assert difference == pytest.approx(row[3] - row[4])
