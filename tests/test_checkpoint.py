"""Tests for functional warm-state checkpoints.

The contract: resuming prefix warming from a stored checkpoint is
*bit-identical* to replaying the whole prefix -- same machine state,
same cumulative warming statistics -- for every backend, and a
checkpoint written under one backend restores under any other.
Geometry keys share checkpoint chains across latency-only config
changes and separate them on any state-shaping change.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu import checkpoint
from repro.cpu.checkpoint import (
    CheckpointStore,
    geometry_fingerprint,
    restore_machine,
    snapshot_machine,
    state_key,
)
from repro.cpu.config import ARCH_CONFIGS, BASELINE, NLP
from repro.cpu.functional import run_functional_warming, warm_prefix
from repro.cpu.kernels.registry import available_backends
from repro.cpu.machine import Machine
from repro.cpu.simulator import Simulator

from tests.conftest import TEST_SCALE, make_micro_workload

CONFIG = ARCH_CONFIGS[0]
BACKENDS = available_backends()


@pytest.fixture(scope="module")
def workload():
    return make_micro_workload(length_m=1200)


@pytest.fixture(scope="module")
def trace(workload):
    return workload.trace(TEST_SCALE)


@pytest.fixture(autouse=True)
def _deactivate():
    """No test leaks an active store (or counters) into the next."""
    checkpoint.activate(None)
    checkpoint.consume_counters()
    yield
    checkpoint.activate(None)
    checkpoint.consume_counters()


def _stats_tuple(stats):
    return (
        stats.instructions,
        stats.branches,
        stats.mispredictions,
        stats.loads,
        stats.stores,
    )


def _canonical(snapshot):
    return json.dumps(snapshot, sort_keys=True)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_restore_reproduces_snapshot(self, trace, backend):
        machine = Machine(CONFIG, BASELINE, backend=backend)
        run_functional_warming(machine, trace, 0, 3000)
        snapshot = snapshot_machine(machine)

        fresh = Machine(CONFIG, BASELINE, backend=backend)
        restore_machine(fresh, snapshot)
        assert _canonical(snapshot_machine(fresh)) == _canonical(snapshot)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_snapshot_is_canonical_across_backends(self, trace, backend):
        """Every backend's warm state serializes to the same document."""
        reference = Machine(CONFIG, BASELINE, backend="python")
        other = Machine(CONFIG, BASELINE, backend=backend)
        run_functional_warming(reference, trace, 0, 3000)
        run_functional_warming(other, trace, 0, 3000)
        assert _canonical(snapshot_machine(other)) == _canonical(
            snapshot_machine(reference)
        )

    def test_snapshot_is_json_serializable(self, trace):
        machine = Machine(CONFIG, BASELINE, backend="python")
        run_functional_warming(machine, trace, 0, 1000)
        document = json.loads(json.dumps(snapshot_machine(machine)))
        fresh = Machine(CONFIG, BASELINE, backend="python")
        restore_machine(fresh, document)
        assert _canonical(snapshot_machine(fresh)) == _canonical(
            snapshot_machine(machine)
        )

    def test_warming_continues_identically_after_restore(self, trace):
        full = Machine(CONFIG, BASELINE, backend="python")
        stats_a = run_functional_warming(full, trace, 0, 2000)
        stats_a.merge(run_functional_warming(full, trace, 2000, 4000))

        resumed = Machine(CONFIG, BASELINE, backend="python")
        partial = Machine(CONFIG, BASELINE, backend="python")
        stats_b = run_functional_warming(partial, trace, 0, 2000)
        restore_machine(resumed, snapshot_machine(partial))
        stats_b.merge(run_functional_warming(resumed, trace, 2000, 4000))

        assert _stats_tuple(stats_b) == _stats_tuple(stats_a)
        assert _canonical(snapshot_machine(resumed)) == _canonical(
            snapshot_machine(full)
        )


class TestWarmPrefixParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("interval", [700, 1000, 4096])
    @pytest.mark.parametrize("end", [1, 699, 700, 2100, 3001])
    def test_bit_identical_to_full_replay(
        self, tmp_path, trace, backend, interval, end
    ):
        reference = Machine(CONFIG, BASELINE, backend=backend)
        expected = run_functional_warming(reference, trace, 0, end)

        checkpoint.activate(CheckpointStore(tmp_path, interval))
        for _ in range(2):  # cold pass writes, second pass resumes
            machine = Machine(CONFIG, BASELINE, backend=backend)
            stats = warm_prefix(machine, trace, end, checkpoint_key="k")
            assert _stats_tuple(stats) == _stats_tuple(expected)
            assert _canonical(snapshot_machine(machine)) == _canonical(
                snapshot_machine(reference)
            )

    def test_cross_backend_resume(self, tmp_path, trace):
        """A checkpoint written under one backend resumes under another."""
        if len(BACKENDS) < 2:
            pytest.skip("needs two backends")
        writer, reader = BACKENDS[0], BACKENDS[-1]
        end = 3000
        checkpoint.activate(CheckpointStore(tmp_path, 1000))

        machine = Machine(CONFIG, BASELINE, backend=writer)
        expected = warm_prefix(machine, trace, end, checkpoint_key="k")
        checkpoint.consume_counters()

        resumed = Machine(CONFIG, BASELINE, backend=reader)
        stats = warm_prefix(resumed, trace, end, checkpoint_key="k")
        counters = checkpoint.consume_counters()
        assert counters["checkpoint_hits"] == 1
        assert counters["instructions_skipped"] == 3000
        assert _stats_tuple(stats) == _stats_tuple(expected)
        assert _canonical(snapshot_machine(resumed)) == _canonical(
            snapshot_machine(machine)
        )

    def test_counters(self, tmp_path, trace):
        checkpoint.activate(CheckpointStore(tmp_path, 1000))
        machine = Machine(CONFIG, BASELINE, backend="python")
        warm_prefix(machine, trace, 2500, checkpoint_key="k")
        counters = checkpoint.consume_counters()
        assert counters["checkpoint_misses"] == 1
        assert counters["checkpoint_hits"] == 0

        machine = Machine(CONFIG, BASELINE, backend="python")
        warm_prefix(machine, trace, 2500, checkpoint_key="k")
        counters = checkpoint.consume_counters()
        assert counters["checkpoint_hits"] == 1
        assert counters["instructions_skipped"] == 2000  # nearest: 2000

    def test_inactive_store_replays_in_full(self, trace):
        machine = Machine(CONFIG, BASELINE, backend="python")
        stats = warm_prefix(machine, trace, 1500, checkpoint_key="k")
        reference = Machine(CONFIG, BASELINE, backend="python")
        expected = run_functional_warming(reference, trace, 0, 1500)
        assert _stats_tuple(stats) == _stats_tuple(expected)
        assert checkpoint.consume_counters()["checkpoint_misses"] == 0

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        end=st.integers(min_value=0, max_value=5000),
        interval=st.integers(min_value=50, max_value=3000),
    )
    def test_parity_sweep(self, tmp_path, trace, end, interval):
        """Any (warm-end, interval) pair -- on or off checkpoint
        boundaries -- resumes bit-identically."""
        reference = Machine(CONFIG, BASELINE, backend="python")
        expected = run_functional_warming(reference, trace, 0, end)

        root = tmp_path / f"cp-{end}-{interval}"
        checkpoint.activate(CheckpointStore(root, interval))
        for _ in range(2):
            machine = Machine(CONFIG, BASELINE, backend="python")
            stats = warm_prefix(machine, trace, end, checkpoint_key="k")
            assert _stats_tuple(stats) == _stats_tuple(expected)
            assert _canonical(snapshot_machine(machine)) == _canonical(
                snapshot_machine(reference)
            )
        checkpoint.activate(None)


class TestKeys:
    def test_latency_only_changes_share_chains(self, workload):
        lat_variant = dataclasses.replace(
            CONFIG,
            name="latvar",
            l2_latency=CONFIG.l2_latency + 7,
            mem_latency_first=CONFIG.mem_latency_first + 50,
        )
        assert geometry_fingerprint(lat_variant, BASELINE) == (
            geometry_fingerprint(CONFIG, BASELINE)
        )
        assert state_key(workload, TEST_SCALE, lat_variant, BASELINE) == (
            state_key(workload, TEST_SCALE, CONFIG, BASELINE)
        )

    def test_geometry_changes_separate_chains(self, workload):
        bigger = dataclasses.replace(
            CONFIG, name="big", dl1_size_kb=CONFIG.dl1_size_kb * 2
        )
        assert state_key(workload, TEST_SCALE, bigger, BASELINE) != (
            state_key(workload, TEST_SCALE, CONFIG, BASELINE)
        )

    def test_prefetch_enhancement_separates_chains(self, workload):
        assert state_key(workload, TEST_SCALE, CONFIG, NLP) != (
            state_key(workload, TEST_SCALE, CONFIG, BASELINE)
        )

    def test_scale_and_workload_separate_chains(self, workload):
        other = make_micro_workload(seed=7)
        assert state_key(other, TEST_SCALE, CONFIG, BASELINE) != (
            state_key(workload, TEST_SCALE, CONFIG, BASELINE)
        )

    def test_simulator_key_requires_active_store(self, tmp_path, workload):
        simulator = Simulator(CONFIG)
        assert simulator.checkpoint_key(workload, TEST_SCALE) is None
        checkpoint.activate(CheckpointStore(tmp_path, 1000))
        assert simulator.checkpoint_key(workload, TEST_SCALE) is not None


class TestStore:
    def test_nearest_picks_highest_at_or_below(self, tmp_path):
        store = CheckpointStore(tmp_path, 100)
        for at in (100, 200, 300):
            store.save("k", at, {"s": at}, {"instructions": at})
        assert store.nearest("k", 250)[0] == 200
        assert store.nearest("k", 300)[0] == 300
        assert store.nearest("k", 99) is None
        assert store.nearest("missing", 300) is None

    def test_corrupt_checkpoint_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path, 100)
        store.save("k", 100, {"s": 100}, {})
        store.save("k", 200, {"s": 200}, {})
        store.path_for("k", 200).write_text("{not json")
        at, state, _ = store.nearest("k", 250)
        assert at == 100
        assert state == {"s": 100}

    def test_save_never_rewrites(self, tmp_path):
        store = CheckpointStore(tmp_path, 100)
        store.save("k", 100, {"s": "first"}, {})
        store.save("k", 100, {"s": "second"}, {})
        assert store.nearest("k", 100)[1] == {"s": "first"}


class TestTechniqueParity:
    """Warmed techniques give identical results with and without a
    checkpoint store -- the store is purely an accelerator."""

    def _run_with_and_without(self, technique, workload, tmp_path):
        baseline = technique.run(workload, CONFIG, TEST_SCALE)
        checkpoint.activate(
            CheckpointStore(tmp_path, max(1, TEST_SCALE.instructions(200)))
        )
        cold = technique.run(workload, CONFIG, TEST_SCALE)
        warm = technique.run(workload, CONFIG, TEST_SCALE)
        checkpoint.activate(None)
        assert cold.stats == baseline.stats
        assert warm.stats == baseline.stats

    def test_warmed_ff(self, tmp_path, workload):
        from repro.techniques.truncated import FFRunZ

        self._run_with_and_without(
            FFRunZ(400, 200, warmed=True), workload, tmp_path
        )

    def test_warmed_ff_wu(self, tmp_path, workload):
        from repro.techniques.truncated import FFWURunZ

        self._run_with_and_without(
            FFWURunZ(400, 100, 200, warmed=True), workload, tmp_path
        )

    def test_smarts(self, tmp_path, workload):
        from repro.techniques.smarts.smarts import SmartsTechnique

        self._run_with_and_without(
            SmartsTechnique(1000, 2000, initial_samples=8), workload, tmp_path
        )
