"""Backend registry and cross-backend parity tests.

Every simulation backend (``python`` reference, ``numpy`` vectorized,
``numba`` JIT) must produce bit-identical statistics; these tests pin
that contract with fixed scenarios and a hypothesis sweep over random
configurations and warm-up/measure splits.  Without numba installed the
numba kernels run interpreted through the identity ``njit`` fallback,
so their semantics are still exercised here.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu.config import Enhancements, ProcessorConfig
from repro.cpu.functional import run_functional_warming
from repro.cpu.kernels.registry import (
    BACKEND_ENV_VAR,
    NumbaBackend,
    NumpyBackend,
    PythonBackend,
    available_backends,
    get_backend,
    numba_available,
    resolve_backend_name,
)
from repro.cpu.machine import Machine
from repro.cpu.pipeline import run_detailed
from repro.cpu.simulator import Simulator

from tests.conftest import TEST_SCALE, make_micro_workload

#: Backends compared against the python reference.  Fresh instances so
#: an explicit object (rather than a registry name) also takes the
#: ``get_backend`` instance path.
ARRAY_BACKENDS = [NumpyBackend(), NumbaBackend()]


@pytest.fixture(scope="module")
def trace():
    # ~6000 instructions: long enough that the numpy backend's
    # vectorized path engages (regions >= SMALL_REGION) on both the
    # warming and the detailed segment of every scenario below.
    return make_micro_workload(length_m=1200).trace(TEST_SCALE)


def run_scenario(backend, trace, config, enhancements, warm_end, measure_from):
    """Warm ``[0, warm_end)`` then detail the rest; return all counters."""
    machine = Machine(config, enhancements, backend=backend)
    warming = run_functional_warming(machine, trace, 0, warm_end)
    stats = run_detailed(
        machine, trace, warm_end, len(trace), measure_from=measure_from
    )
    return warming, stats, machine.cache_snapshot()


class TestRegistry:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        expected = "numba" if numba_available() else "numpy"
        assert resolve_backend_name() == expected
        assert resolve_backend_name("auto") == expected

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend_name() == "python"
        assert Machine(ProcessorConfig()).backend.name == "python"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend_name("python") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend_name("fortran")

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_numba_request_degrades_gracefully(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend_name("numba") == "numpy"
        assert "numba" not in available_backends()

    def test_available_backends(self):
        names = available_backends()
        assert "python" in names and "numpy" in names

    def test_get_backend_accepts_instance(self):
        backend = NumbaBackend()
        assert get_backend(backend) is backend

    def test_get_backend_caches_by_name(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_cli_flag_exports_backend(self, monkeypatch, capsys):
        from repro.experiments.__main__ import main

        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert main(["list", "--backend", "python"]) == 0
        # The flag wins over the environment and is exported so worker
        # processes inherit the resolved choice.
        import os

        assert os.environ[BACKEND_ENV_VAR] == "python"


class TestFixedScenarioParity:
    """Hand-picked configurations covering every structure variant."""

    SCENARIOS = {
        "default": (ProcessorConfig(), Enhancements()),
        "bimodal": (ProcessorConfig(branch_predictor="bimodal"), Enhancements()),
        "gshare": (
            ProcessorConfig(branch_predictor="gshare", bht_entries=1024),
            Enhancements(),
        ),
        "taken": (ProcessorConfig(branch_predictor="taken"), Enhancements()),
        "perfect": (ProcessorConfig(branch_predictor="perfect"), Enhancements()),
        "enhanced": (
            ProcessorConfig(),
            Enhancements(trivial_computation=True, next_line_prefetch=True),
        ),
        "direct-mapped": (
            ProcessorConfig(il1_assoc=1, dl1_assoc=1, btb_assoc=1),
            Enhancements(),
        ),
        "small-window": (
            ProcessorConfig(rob_entries=16, lsq_entries=8, ifq_size=4),
            Enhancements(),
        ),
    }

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS, ids=lambda b: b.name)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_matches_reference(self, trace, backend, scenario):
        config, enhancements = self.SCENARIOS[scenario]
        warm_end = len(trace) // 3
        measure_from = warm_end + (len(trace) - warm_end) // 4
        expected = run_scenario(
            PythonBackend(), trace, config, enhancements, warm_end, measure_from
        )
        actual = run_scenario(
            backend, trace, config, enhancements, warm_end, measure_from
        )
        assert actual == expected

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS, ids=lambda b: b.name)
    def test_reference_warm_segment_handoff(self, trace, backend):
        # A detail-warm segment shorter than SMALL_REGION runs through
        # the reference loop even on array backends, which leaves the
        # function-unit pools in min-scan (arbitrary) order.  The
        # vectorized measured segment that follows must not assume the
        # sorted-pool invariant it maintains internally.
        config = ProcessorConfig(
            branch_predictor="combined", bht_entries=512, btb_entries=256,
            btb_assoc=1, il1_assoc=1, dl1_assoc=1, l2_assoc=2,
            rob_entries=64, lsq_entries=8, ras_entries=4,
        )
        enhancements = Enhancements(
            trivial_computation=False, next_line_prefetch=False
        )
        warm_end = len(trace) // 7          # reference path (< SMALL_REGION)
        measure_from = warm_end + 765       # detail-warm also < SMALL_REGION
        expected = run_scenario(
            PythonBackend(), trace, config, enhancements, warm_end, measure_from
        )
        actual = run_scenario(
            backend, trace, config, enhancements, warm_end, measure_from
        )
        assert actual == expected

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS, ids=lambda b: b.name)
    def test_cold_full_trace(self, trace, backend):
        reference = Simulator(backend=PythonBackend()).run_reference(trace)
        result = Simulator(backend=backend).run_reference(trace)
        assert result.stats == reference.stats

    def test_simulator_accepts_backend_names(self, trace):
        reference = Simulator(backend="python").run_region(trace, 0, 2000)
        result = Simulator(backend="numpy").run_region(trace, 0, 2000)
        assert result.stats == reference.stats


class TestBatchedParity:
    """``run_regions`` with N configs must be bit-identical, per config,
    to N independent ``run_region`` calls -- against both the numpy
    backend's own per-run path and the python reference backend."""

    #: Latency / core-width variants of one geometry: every field a
    #: batch is allowed to vary, including ``int_alu_lat`` (which
    #: selects a different generated timing loop per config).
    def variants(self):
        base = ProcessorConfig()
        return [
            base,
            base.replace(name="lat1", l2_latency=6, mem_latency_first=120),
            base.replace(name="lat2", mem_latency_next=9, mem_bus_width=4),
            base.replace(name="lat3", int_alu_lat=2, int_mult_lat=5),
            base.replace(name="lat4", rob_entries=32, lsq_entries=16,
                         ifq_size=8, mispredict_penalty=3),
        ]

    def per_run(self, backend, trace, specs, start, end, **kwargs):
        return [
            Simulator(config, enh, backend=backend).run_region(
                trace, start, end, **kwargs
            )
            for config, enh in specs
        ]

    def batched(self, trace, specs, start, end, backend="numpy", **kwargs):
        return Simulator(backend=backend).run_regions(
            trace,
            (start, end),
            configs=[config for config, _ in specs],
            enhancements=[enh for _, enh in specs],
            **kwargs,
        )

    def test_latency_batch_matches_per_run(self, trace):
        # Trivial-computation members may share a batch with baseline
        # members (TC affects timing codes, not structure outcomes).
        specs = [
            (config, Enhancements(trivial_computation=(i % 2 == 1)))
            for i, config in enumerate(self.variants())
        ]
        start, end = 2000, len(trace)
        expected = self.per_run("numpy", trace, specs, start, end)
        assert self.batched(trace, specs, start, end) == expected

    def test_batch_matches_reference_backend(self, trace):
        specs = [(config, Enhancements()) for config in self.variants()]
        start, end = 1500, len(trace)
        reference = self.per_run("python", trace, specs, start, end)
        results = self.batched(trace, specs, start, end)
        assert [r.stats for r in results] == [r.stats for r in reference]

    def test_reference_backend_run_regions_falls_back(self, trace):
        # The API holds on the python backend too: it reports no
        # batching support, so run_regions loops per config.
        specs = [(config, Enhancements()) for config in self.variants()[:3]]
        start, end = 2000, len(trace)
        expected = self.per_run("python", trace, specs, start, end)
        assert self.batched(trace, specs, start, end, backend="python") == expected

    def test_warmed_prefix_batch(self, trace):
        specs = [(config, Enhancements()) for config in self.variants()]
        start, end = len(trace) // 2, len(trace)
        for backend in ("python", "numpy"):
            expected = self.per_run(
                backend, trace, specs, start, end,
                warmup_instructions=300, warmed_prefix=True,
            )
            results = self.batched(
                trace, specs, start, end,
                warmup_instructions=300, warmed_prefix=True,
            )
            assert [r.stats for r in results] == [r.stats for r in expected]
        assert results == expected  # full work profile on numpy too

    def test_checkpoint_resume_batch(self, trace, tmp_path):
        from repro.cpu import checkpoint
        from repro.cpu.checkpoint import CheckpointStore

        specs = [(config, Enhancements()) for config in self.variants()]
        start, end = len(trace) // 2, len(trace)
        expected = self.per_run(
            "numpy", trace, specs, start, end, warmed_prefix=True
        )
        checkpoint.activate(CheckpointStore(tmp_path, 1000))
        try:
            first = self.batched(
                trace, specs, start, end,
                warmed_prefix=True, checkpoint_key="batch-chain",
            )
            # Second batch resumes its shared warming prefix from the
            # checkpoint the first one stored.
            resumed = self.batched(
                trace, specs, start, end,
                warmed_prefix=True, checkpoint_key="batch-chain",
            )
        finally:
            checkpoint.activate(None)
        assert [r.stats for r in first] == [r.stats for r in expected]
        assert [r.stats for r in resumed] == [r.stats for r in expected]

    def test_nlp_batch_falls_back_and_matches(self, trace):
        specs = [
            (config, Enhancements(next_line_prefetch=True))
            for config in self.variants()[:3]
        ]
        start, end = 2000, len(trace)
        expected = self.per_run("numpy", trace, specs, start, end)
        assert self.batched(trace, specs, start, end) == expected

    def test_nlp_rejected_by_batch_kernel(self, trace):
        from repro.cpu.kernels import numpy_impl
        from repro.cpu.pipeline import _TimingState

        machine = Machine(
            ProcessorConfig(), Enhancements(next_line_prefetch=True),
            backend="numpy",
        )
        batch = [(machine.config, machine.enhancements)]
        with pytest.raises(ValueError, match="next.line.prefetch"):
            numpy_impl.advance_detailed_batch(
                machine, trace, 0, 2000, batch,
                [_TimingState(machine)],
            )

    def test_heterogeneous_geometry_batches(self, trace):
        # Geometry-varying members are eligible: the simulator groups
        # them per geometry internally, and each group's batched pass
        # stays bit-identical to independent runs.
        base = ProcessorConfig()
        specs = [
            (base, Enhancements()),
            (base.replace(name="big-l2", l2_size_kb=2048), Enhancements()),
            (base.replace(name="lat", l2_latency=6), Enhancements()),
            (base.replace(name="gshare", branch_predictor="gshare"),
             Enhancements()),
        ]
        start, end = 2000, len(trace)
        expected = self.per_run("numpy", trace, specs, start, end)
        assert self.batched(trace, specs, start, end) == expected

    def test_geometry_varying_batch_warmed_prefix(self, trace):
        # Mixed geometries through the warmed-prefix path: each
        # geometry group warms its own machine and the per-config
        # checkpoint keys keep results identical to independent runs.
        base = ProcessorConfig()
        specs = [
            (base, Enhancements()),
            (base.replace(name="small-bht", bht_entries=512),
             Enhancements()),
            (base.replace(name="lat", mem_latency_first=120),
             Enhancements(trivial_computation=True)),
        ]
        start, end = len(trace) // 2, len(trace)
        expected = self.per_run(
            "numpy", trace, specs, start, end,
            warmup_instructions=300, warmed_prefix=True,
        )
        results = self.batched(
            trace, specs, start, end,
            warmup_instructions=300, warmed_prefix=True,
        )
        assert results == expected

    def test_numba_batch_matches_sequential_numpy(self, trace):
        # The data-parallel kernel (interpreted when numba is absent)
        # must be bit-identical to the numpy backend's sequential
        # per-member path -- full results, stats and work profile.
        specs = [
            (config, Enhancements(trivial_computation=(i % 2 == 1)))
            for i, config in enumerate(self.variants())
        ]
        start, end = 2000, len(trace)
        expected = self.per_run("numpy", trace, specs, start, end)
        assert self.batched(
            trace, specs, start, end, backend=NumbaBackend()
        ) == expected

    @pytest.mark.parametrize("threads", ["1", "2", "4"])
    def test_thread_count_independence(self, trace, monkeypatch, threads):
        # prange iterations are fully independent, so the thread count
        # must never show up in the results.
        from repro.settings import KERNEL_THREADS_ENV_VAR

        specs = [(config, Enhancements()) for config in self.variants()]
        start, end = 2000, len(trace)
        expected = self.per_run("numpy", trace, specs, start, end)
        monkeypatch.setenv(KERNEL_THREADS_ENV_VAR, threads)
        assert self.batched(
            trace, specs, start, end, backend=NumbaBackend()
        ) == expected

    def test_batch_kernel_falls_back_without_numba(self, trace, monkeypatch):
        # With numba unavailable the driver runs the same kernel
        # interpreted, single-threaded, and stays bit-identical.
        from repro.cpu.kernels import batch_impl

        monkeypatch.setattr(batch_impl, "NUMBA_AVAILABLE", False)
        assert batch_impl.resolve_threads(8) == 1
        specs = [(config, Enhancements()) for config in self.variants()[:3]]
        start, end = 2000, len(trace)
        expected = self.per_run("numpy", trace, specs, start, end)
        assert self.batched(
            trace, specs, start, end, backend=NumbaBackend()
        ) == expected

    def test_mismatched_enhancement_count_rejected(self, trace):
        with pytest.raises(ValueError, match="configs but"):
            Simulator(backend="numpy").run_regions(
                trace,
                (0, 2000),
                configs=[ProcessorConfig(), ProcessorConfig()],
                enhancements=[Enhancements()] * 3,
            )


@st.composite
def batch_scenarios(draw):
    """A batch of 2-4 latency/width variants over one shared geometry,
    with per-member trivial-computation and a warm-up split."""
    base = ProcessorConfig(
        branch_predictor=draw(st.sampled_from(["combined", "bimodal", "taken"])),
        il1_assoc=draw(st.sampled_from([1, 2])),
        dl1_assoc=draw(st.sampled_from([1, 4])),
        bht_entries=draw(st.sampled_from([512, 4096])),
    )
    members = []
    for index in range(draw(st.integers(2, 4))):
        config = base.replace(
            name=f"member{index}",
            l2_latency=draw(st.integers(2, 14)),
            mem_latency_first=draw(st.integers(40, 260)),
            mem_latency_next=draw(st.integers(1, 10)),
            mem_bus_width=draw(st.sampled_from([4, 8, 16])),
            int_alu_lat=draw(st.sampled_from([1, 2])),
            rob_entries=draw(st.sampled_from([16, 64])),
            lsq_entries=draw(st.sampled_from([8, 32])),
        )
        enh = Enhancements(trivial_computation=draw(st.booleans()))
        members.append((config, enh))
    warm_frac = draw(st.floats(0.0, 0.5))
    warmed_prefix = draw(st.booleans())
    return members, warm_frac, warmed_prefix


class TestBatchedHypothesisParity:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=batch_scenarios())
    def test_batched_bit_identical_per_config(self, trace, scenario):
        members, warm_frac, warmed_prefix = scenario
        start = int(len(trace) * warm_frac)
        end = len(trace)
        reference = [
            Simulator(config, enh, backend="python").run_region(
                trace, start, end, warmed_prefix=warmed_prefix
            )
            for config, enh in members
        ]
        per_run = [
            Simulator(config, enh, backend="numpy").run_region(
                trace, start, end, warmed_prefix=warmed_prefix
            )
            for config, enh in members
        ]
        batched = Simulator(backend="numpy").run_regions(
            trace,
            (start, end),
            configs=[config for config, _ in members],
            enhancements=[enh for _, enh in members],
            warmed_prefix=warmed_prefix,
        )
        assert batched == per_run
        assert [r.stats for r in batched] == [r.stats for r in reference]
        # The data-parallel numba kernel serves the same batch
        # bit-identically (interpreted when numba is not installed).
        parallel = Simulator(backend=NumbaBackend()).run_regions(
            trace,
            (start, end),
            configs=[config for config, _ in members],
            enhancements=[enh for _, enh in members],
            warmed_prefix=warmed_prefix,
        )
        assert parallel == per_run


@st.composite
def scenarios(draw):
    config = ProcessorConfig(
        branch_predictor=draw(
            st.sampled_from(["combined", "bimodal", "gshare", "taken", "perfect"])
        ),
        bht_entries=draw(st.sampled_from([512, 2048, 8192])),
        btb_entries=draw(st.sampled_from([256, 2048])),
        btb_assoc=draw(st.sampled_from([1, 2, 4])),
        ras_entries=draw(st.sampled_from([4, 16])),
        il1_assoc=draw(st.sampled_from([1, 2])),
        dl1_assoc=draw(st.sampled_from([1, 4])),
        l2_assoc=draw(st.sampled_from([2, 8])),
        rob_entries=draw(st.sampled_from([16, 64])),
        lsq_entries=draw(st.sampled_from([8, 32])),
    )
    enhancements = Enhancements(
        trivial_computation=draw(st.booleans()),
        next_line_prefetch=draw(st.booleans()),
    )
    warm_frac = draw(st.floats(0.0, 0.5))
    measure_frac = draw(st.floats(0.0, 0.4))
    return config, enhancements, warm_frac, measure_frac


class TestHypothesisParity:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=scenarios())
    def test_backends_bit_identical(self, trace, scenario):
        config, enhancements, warm_frac, measure_frac = scenario
        warm_end = int(len(trace) * warm_frac)
        measure_from = warm_end + int((len(trace) - warm_end) * measure_frac)
        results = [
            run_scenario(
                backend, trace, config, enhancements, warm_end, measure_from
            )
            for backend in (PythonBackend(), NumpyBackend(), NumbaBackend())
        ]
        assert results[1] == results[0]
        assert results[2] == results[0]
