"""Backend registry and cross-backend parity tests.

Every simulation backend (``python`` reference, ``numpy`` vectorized,
``numba`` JIT) must produce bit-identical statistics; these tests pin
that contract with fixed scenarios and a hypothesis sweep over random
configurations and warm-up/measure splits.  Without numba installed the
numba kernels run interpreted through the identity ``njit`` fallback,
so their semantics are still exercised here.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu.config import Enhancements, ProcessorConfig
from repro.cpu.functional import run_functional_warming
from repro.cpu.kernels.registry import (
    BACKEND_ENV_VAR,
    NumbaBackend,
    NumpyBackend,
    PythonBackend,
    available_backends,
    get_backend,
    numba_available,
    resolve_backend_name,
)
from repro.cpu.machine import Machine
from repro.cpu.pipeline import run_detailed
from repro.cpu.simulator import Simulator

from tests.conftest import TEST_SCALE, make_micro_workload

#: Backends compared against the python reference.  Fresh instances so
#: an explicit object (rather than a registry name) also takes the
#: ``get_backend`` instance path.
ARRAY_BACKENDS = [NumpyBackend(), NumbaBackend()]


@pytest.fixture(scope="module")
def trace():
    # ~6000 instructions: long enough that the numpy backend's
    # vectorized path engages (regions >= SMALL_REGION) on both the
    # warming and the detailed segment of every scenario below.
    return make_micro_workload(length_m=1200).trace(TEST_SCALE)


def run_scenario(backend, trace, config, enhancements, warm_end, measure_from):
    """Warm ``[0, warm_end)`` then detail the rest; return all counters."""
    machine = Machine(config, enhancements, backend=backend)
    warming = run_functional_warming(machine, trace, 0, warm_end)
    stats = run_detailed(
        machine, trace, warm_end, len(trace), measure_from=measure_from
    )
    return warming, stats, machine.cache_snapshot()


class TestRegistry:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        expected = "numba" if numba_available() else "numpy"
        assert resolve_backend_name() == expected
        assert resolve_backend_name("auto") == expected

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend_name() == "python"
        assert Machine(ProcessorConfig()).backend.name == "python"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend_name("python") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend_name("fortran")

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_numba_request_degrades_gracefully(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend_name("numba") == "numpy"
        assert "numba" not in available_backends()

    def test_available_backends(self):
        names = available_backends()
        assert "python" in names and "numpy" in names

    def test_get_backend_accepts_instance(self):
        backend = NumbaBackend()
        assert get_backend(backend) is backend

    def test_get_backend_caches_by_name(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_cli_flag_exports_backend(self, monkeypatch, capsys):
        from repro.experiments.__main__ import main

        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert main(["list", "--backend", "python"]) == 0
        # The flag wins over the environment and is exported so worker
        # processes inherit the resolved choice.
        import os

        assert os.environ[BACKEND_ENV_VAR] == "python"


class TestFixedScenarioParity:
    """Hand-picked configurations covering every structure variant."""

    SCENARIOS = {
        "default": (ProcessorConfig(), Enhancements()),
        "bimodal": (ProcessorConfig(branch_predictor="bimodal"), Enhancements()),
        "gshare": (
            ProcessorConfig(branch_predictor="gshare", bht_entries=1024),
            Enhancements(),
        ),
        "taken": (ProcessorConfig(branch_predictor="taken"), Enhancements()),
        "perfect": (ProcessorConfig(branch_predictor="perfect"), Enhancements()),
        "enhanced": (
            ProcessorConfig(),
            Enhancements(trivial_computation=True, next_line_prefetch=True),
        ),
        "direct-mapped": (
            ProcessorConfig(il1_assoc=1, dl1_assoc=1, btb_assoc=1),
            Enhancements(),
        ),
        "small-window": (
            ProcessorConfig(rob_entries=16, lsq_entries=8, ifq_size=4),
            Enhancements(),
        ),
    }

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS, ids=lambda b: b.name)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_matches_reference(self, trace, backend, scenario):
        config, enhancements = self.SCENARIOS[scenario]
        warm_end = len(trace) // 3
        measure_from = warm_end + (len(trace) - warm_end) // 4
        expected = run_scenario(
            PythonBackend(), trace, config, enhancements, warm_end, measure_from
        )
        actual = run_scenario(
            backend, trace, config, enhancements, warm_end, measure_from
        )
        assert actual == expected

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS, ids=lambda b: b.name)
    def test_reference_warm_segment_handoff(self, trace, backend):
        # A detail-warm segment shorter than SMALL_REGION runs through
        # the reference loop even on array backends, which leaves the
        # function-unit pools in min-scan (arbitrary) order.  The
        # vectorized measured segment that follows must not assume the
        # sorted-pool invariant it maintains internally.
        config = ProcessorConfig(
            branch_predictor="combined", bht_entries=512, btb_entries=256,
            btb_assoc=1, il1_assoc=1, dl1_assoc=1, l2_assoc=2,
            rob_entries=64, lsq_entries=8, ras_entries=4,
        )
        enhancements = Enhancements(
            trivial_computation=False, next_line_prefetch=False
        )
        warm_end = len(trace) // 7          # reference path (< SMALL_REGION)
        measure_from = warm_end + 765       # detail-warm also < SMALL_REGION
        expected = run_scenario(
            PythonBackend(), trace, config, enhancements, warm_end, measure_from
        )
        actual = run_scenario(
            backend, trace, config, enhancements, warm_end, measure_from
        )
        assert actual == expected

    @pytest.mark.parametrize("backend", ARRAY_BACKENDS, ids=lambda b: b.name)
    def test_cold_full_trace(self, trace, backend):
        reference = Simulator(backend=PythonBackend()).run_reference(trace)
        result = Simulator(backend=backend).run_reference(trace)
        assert result.stats == reference.stats

    def test_simulator_accepts_backend_names(self, trace):
        reference = Simulator(backend="python").run_region(trace, 0, 2000)
        result = Simulator(backend="numpy").run_region(trace, 0, 2000)
        assert result.stats == reference.stats


@st.composite
def scenarios(draw):
    config = ProcessorConfig(
        branch_predictor=draw(
            st.sampled_from(["combined", "bimodal", "gshare", "taken", "perfect"])
        ),
        bht_entries=draw(st.sampled_from([512, 2048, 8192])),
        btb_entries=draw(st.sampled_from([256, 2048])),
        btb_assoc=draw(st.sampled_from([1, 2, 4])),
        ras_entries=draw(st.sampled_from([4, 16])),
        il1_assoc=draw(st.sampled_from([1, 2])),
        dl1_assoc=draw(st.sampled_from([1, 4])),
        l2_assoc=draw(st.sampled_from([2, 8])),
        rob_entries=draw(st.sampled_from([16, 64])),
        lsq_entries=draw(st.sampled_from([8, 32])),
    )
    enhancements = Enhancements(
        trivial_computation=draw(st.booleans()),
        next_line_prefetch=draw(st.booleans()),
    )
    warm_frac = draw(st.floats(0.0, 0.5))
    measure_frac = draw(st.floats(0.0, 0.4))
    return config, enhancements, warm_frac, measure_frac


class TestHypothesisParity:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(scenario=scenarios())
    def test_backends_bit_identical(self, trace, scenario):
        config, enhancements, warm_frac, measure_frac = scenario
        warm_end = int(len(trace) * warm_frac)
        measure_from = warm_end + int((len(trace) - warm_end) * measure_frac)
        results = [
            run_scenario(
                backend, trace, config, enhancements, warm_end, measure_from
            )
            for backend in (PythonBackend(), NumpyBackend(), NumbaBackend())
        ]
        assert results[1] == results[0]
        assert results[2] == results[0]
