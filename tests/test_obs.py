"""Tests for the observability layer: tracer, phase ledger, live
telemetry, metrics histograms and the trace report tooling."""

import json
import threading

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.engine import Engine, RunRequest
from repro.engine.metrics import EngineMetrics, ProgressReporter, _percentile
from repro.obs import live, phases, trace
from repro.obs import report as obs_report
from repro.scale import Scale
from repro.techniques.truncated import RunZ
from repro.workloads.spec import get_workload

SCALE = Scale(2)


@pytest.fixture()
def workload():
    return get_workload("gzip")


@pytest.fixture()
def tracer_dir(tmp_path):
    events = tmp_path / "events"
    trace.activate(events, worker="test")
    yield events
    trace.deactivate()


def _events_for(events_dir, worker="test"):
    return trace.read_events(events_dir / f"{worker}.jsonl")


class TestTracer:
    def test_disabled_by_default(self):
        assert not trace.active()
        # All entry points must be safe no-ops when inactive.
        with trace.span("anything", run="x"):
            pass
        trace.event("anything")
        trace.emit_span("anything", 0.0, 1.0)
        trace.flush()

    def test_default_enabled_parses_env(self, monkeypatch):
        for value, expected in (
            ("", False), ("0", False), ("false", False), ("off", False),
            ("no", False), ("1", True), ("true", True), ("yes", True),
        ):
            monkeypatch.setenv(trace.TRACE_ENV_VAR, value)
            assert trace.default_enabled() is expected

    def test_meta_line_first(self, tracer_dir):
        events = _events_for(tracer_dir)
        assert events[0]["event"] == "meta"
        assert events[0]["version"] == trace.TRACE_SCHEMA_VERSION
        assert events[0]["worker"] == "test"

    def test_span_nesting_records_parent(self, tracer_dir):
        with trace.span("outer") as outer:
            with trace.span("inner"):
                pass
        spans = {
            e["name"]: e
            for e in _events_for(tracer_dir)
            if e["event"] == "span"
        }
        assert spans["inner"]["parent"] == outer.span_id
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["ts"] >= spans["outer"]["ts"]
        assert spans["inner"]["dur"] <= spans["outer"]["dur"]

    def test_point_event_nests_under_open_span(self, tracer_dir):
        with trace.span("outer") as outer:
            trace.event("retry", kind="timeout")
        points = [
            e for e in _events_for(tracer_dir) if e["event"] == "point"
        ]
        assert points[0]["parent"] == outer.span_id
        assert points[0]["attrs"]["kind"] == "timeout"

    def test_context_stamped_on_events(self, tracer_dir):
        trace.set_context(run="abc123", family="Stub")
        with trace.span("phase", extra=1):
            pass
        trace.clear_context()
        with trace.span("later"):
            pass
        spans = {
            e["name"]: e
            for e in _events_for(tracer_dir)
            if e["event"] == "span"
        }
        assert spans["phase"]["attrs"] == {
            "run": "abc123", "family": "Stub", "extra": 1,
        }
        assert "attrs" not in spans["later"]

    def test_env_auto_activation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace.EVENTS_DIR_ENV_VAR, str(tmp_path))
        assert trace.active()
        with trace.span("auto"):
            pass
        trace.deactivate()
        files = list(tmp_path.glob("*.jsonl"))
        assert len(files) == 1
        assert any(
            e["event"] == "span" and e["name"] == "auto"
            for e in trace.read_events(files[0])
        )

    def test_sequence_numbers_monotonic(self, tracer_dir):
        for index in range(5):
            trace.event("tick", index=index)
        seqs = [e["seq"] for e in _events_for(tracer_dir)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestReadAndMerge:
    def test_read_tolerates_truncated_and_garbage_lines(self, tmp_path):
        path = tmp_path / "w1.jsonl"
        good = json.dumps({"event": "point", "name": "ok", "ts": 1.0})
        path.write_text(
            good + "\nnot json at all\n" + good[: len(good) // 2],
            encoding="utf-8",
        )
        events = trace.read_events(path)
        assert len(events) == 1
        assert events[0]["name"] == "ok"

    def test_read_missing_file(self, tmp_path):
        assert trace.read_events(tmp_path / "absent.jsonl") == []

    def test_merge_orders_across_workers_by_span_start(self, tmp_path):
        # Worker clocks interleave: a's spans start at t=1 and t=5,
        # b's at t=3.  The merge must sort by monotonic timestamp
        # across workers and by sequence within one worker.
        def write(worker, records):
            lines = [json.dumps(r) for r in records]
            (tmp_path / f"{worker}.jsonl").write_text(
                "\n".join(lines) + "\n", encoding="utf-8"
            )

        write("a", [
            {"event": "meta", "worker": "a", "seq": 0},
            {"event": "span", "name": "a1", "ts": 1.0, "worker": "a", "seq": 1},
            {"event": "span", "name": "a2", "ts": 5.0, "worker": "a", "seq": 2},
        ])
        write("b", [
            {"event": "meta", "worker": "b", "seq": 0},
            {"event": "span", "name": "b1", "ts": 3.0, "worker": "b", "seq": 1},
        ])
        merged = trace.merge_events(tmp_path)
        names = [e.get("name") for e in merged if e["event"] == "span"]
        assert names == ["a1", "b1", "a2"]
        # Meta lines (no ts) sort ahead of all spans.
        assert [e["event"] for e in merged[:2]] == ["meta", "meta"]

    def test_merge_within_worker_keeps_emit_order(self, tmp_path):
        # Equal timestamps: the per-worker sequence number breaks the
        # tie, so a worker's own events never reorder.
        records = [
            {"event": "span", "name": f"s{i}", "ts": 2.0, "worker": "w", "seq": i}
            for i in range(10)
        ]
        (tmp_path / "w.jsonl").write_text(
            "\n".join(json.dumps(r) for r in records) + "\n", encoding="utf-8"
        )
        merged = trace.merge_events(tmp_path)
        assert [e["name"] for e in merged] == [f"s{i}" for i in range(10)]

    def test_merge_writes_atomic_output(self, tmp_path):
        events_dir = tmp_path / "events"
        events_dir.mkdir()
        (events_dir / "w.jsonl").write_text(
            json.dumps({"event": "span", "name": "x", "ts": 1.0, "seq": 0})
            + "\n",
            encoding="utf-8",
        )
        out = tmp_path / "trace.jsonl"
        assert trace.merge(events_dir, out) == 1
        assert len(trace.read_events(out)) == 1
        assert not list(tmp_path.glob(".trace.jsonl-*"))  # no temp litter

    def test_merge_empty_directory_still_writes_file(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert trace.merge(tmp_path / "missing", out) == 0
        assert out.exists()
        assert out.read_text() == ""

    def test_validate_events(self):
        good = [
            {"event": "meta", "worker": "w", "pid": 1, "mono": 0.0, "wall": 0.0},
            {"event": "span", "name": "x", "ts": 1.0, "dur": 0.5,
             "worker": "w", "pid": 1, "seq": 1},
        ]
        assert trace.validate_events(good) == []
        problems = trace.validate_events([
            {"event": "span", "name": "x"},            # missing keys
            {"event": "mystery"},                      # unknown kind
            {"event": "span", "name": "x", "ts": 1.0, "dur": -2.0,
             "worker": "w", "pid": 1, "seq": 1},       # negative duration
        ])
        assert len(problems) == 3


class TestPhases:
    def test_record_accumulates_and_drain_clears(self):
        phases.record("warming", 1.5, 100)
        phases.record("warming", 0.5, 50)
        phases.record("detailed", 2.0, 10)
        drained = phases.drain()
        assert drained["warming"] == {"seconds": 2.0, "instructions": 150}
        assert drained["detailed"]["instructions"] == 10
        assert phases.drain() == {}

    def test_measured_times_block(self):
        with phases.measured("detailed", instructions=42):
            pass
        drained = phases.drain()
        assert drained["detailed"]["instructions"] == 42
        assert drained["detailed"]["seconds"] >= 0.0

    def test_measured_notifies_phase_start(self):
        seen = []
        phases.set_notifier(seen.append)
        try:
            with phases.measured("warming"):
                pass
            with phases.measured("detailed"):
                pass
        finally:
            phases.set_notifier(None)
        phases.drain()
        assert seen == ["warming", "detailed"]

    def test_notifier_exceptions_swallowed(self):
        def broken(phase):
            raise RuntimeError("observer bug")

        phases.set_notifier(broken)
        try:
            with phases.measured("warming"):
                pass
        finally:
            phases.set_notifier(None)
        assert "warming" in phases.drain()

    def test_measured_emits_trace_span(self, tmp_path):
        trace.activate(tmp_path, worker="test")
        try:
            with phases.measured("warming", instructions=7, backend="python"):
                pass
        finally:
            trace.deactivate()
        phases.drain()
        spans = [
            e
            for e in trace.read_events(tmp_path / "test.jsonl")
            if e["event"] == "span"
        ]
        assert spans[0]["name"] == "warming"
        assert spans[0]["attrs"]["instructions"] == 7
        assert spans[0]["attrs"]["backend"] == "python"


class TestMetricsAggregation:
    def test_percentile_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert _percentile(samples, 0.5) == 5.0
        assert _percentile(samples, 0.9) == 9.0
        assert _percentile([], 0.5) == 0.0

    def test_phase_histograms_in_snapshot(self):
        metrics = EngineMetrics()
        for wall in (1.0, 2.0, 3.0):
            metrics.record_execution(
                "Stub", wall, 100,
                phase_times={"warming": {"seconds": wall / 2, "instructions": 50}},
                backend="numpy",
            )
        snap = metrics.snapshot()
        family = snap["per_family"]["Stub"]
        assert family["wall"]["max_s"] == 3.0
        assert family["phases"]["warming"]["samples"] == 3
        assert family["phases"]["warming"]["seconds"] == 3.0
        assert family["phases"]["warming"]["p50_s"] == 1.0
        backend = snap["per_backend"]["numpy"]
        assert backend["runs"] == 3
        assert backend["wall"]["p90_s"] == 3.0

    def test_record_phases_without_run(self):
        metrics = EngineMetrics()
        metrics.record_phases(
            "SimPoint", {"analysis": {"seconds": 4.0, "instructions": 0}}
        )
        snap = metrics.snapshot()
        assert snap["per_family"]["SimPoint"]["phases"]["analysis"]["seconds"] == 4.0
        assert snap["per_family"]["SimPoint"]["runs"] == 0

    def test_failures_by_kind(self):
        metrics = EngineMetrics()
        metrics.record_failure("run-a", "timeout", "t", 2, False)
        metrics.record_failure("run-b", "timeout", "t", 2, True)
        metrics.record_failure("run-c", "crash", "c", 1, False)
        snap = metrics.snapshot()
        assert snap["failures_by_kind"] == {"crash": 1, "timeout": 2}
        assert metrics.timeouts == 2
        assert metrics.quarantined == 1

    def test_concurrent_write_json_never_tears(self, tmp_path):
        """Concurrent writers racing on one stats path must always
        leave a complete, parseable document (atomic replace)."""
        path = tmp_path / "engine-stats.json"
        errors = []
        stop = threading.Event()

        def writer(tag):
            metrics = EngineMetrics()
            metrics.record_execution(f"F{tag}", 1.0, 100)
            for _ in range(30):
                try:
                    metrics.write_json(path, extra={"writer": tag})
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        def reader():
            while not stop.is_set():
                if path.exists():
                    try:
                        json.loads(path.read_text(encoding="utf-8"))
                    except json.JSONDecodeError as exc:  # pragma: no cover
                        errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(tag,)) for tag in range(4)
        ]
        observer = threading.Thread(target=reader)
        observer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        observer.join()
        assert not errors
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["writer"] in range(4)
        assert not list(tmp_path.glob(".engine-stats.json-*"))


class TestProgressReporter:
    def _reporter(self, stream, **kwargs):
        kwargs.setdefault("enabled", True)
        kwargs.setdefault("min_interval", 3600.0)
        return ProgressReporter(stream=stream, **kwargs)

    def test_final_line_bypasses_throttle(self, capsys):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        metrics = EngineMetrics()
        reporter.update(1, 3, metrics)            # first line emits
        reporter.update(2, 3, metrics)            # throttled
        reporter.update(3, 3, metrics)            # final: must emit
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert "3/3 runs" in lines[-1]

    def test_in_flight_and_queued_rendered(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        reporter.update(0, 4, EngineMetrics(), in_flight=2, queued=1)
        line = stream.getvalue()
        assert "in-flight 2" in line
        assert "queued 1" in line

    def test_eta_from_rolling_wall_times(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream, jobs=2)
        for _ in range(4):
            reporter.update(0, 10, EngineMetrics(), wall=2.0)
        # mean 2s x 8 remaining / 2 jobs = 8s
        assert reporter.eta_seconds(8) == pytest.approx(8.0)
        reporter.update(1, 10, EngineMetrics())
        assert "eta" in stream.getvalue()

    def test_disabled_reporter_still_collects_walls(self):
        reporter = ProgressReporter(enabled=False)
        reporter.update(0, 5, EngineMetrics(), wall=1.0)
        assert reporter.eta_seconds(5) is not None

    def test_eta_none_before_any_wall(self):
        reporter = ProgressReporter(enabled=False)
        assert reporter.eta_seconds(5) is None


class TestInflightTracker:
    def test_lifecycle(self):
        tracker = live.InflightTracker()
        tracker.start(0, key="abc", description="run a", attempt=1, pid=42)
        tracker.set_phase(0, "warming")
        tracker.set_queue(3)
        tracker.set_progress(1, 5)
        snap = tracker.snapshot()
        assert snap["queued"] == 3
        assert snap["done"] == 1 and snap["total"] == 5
        (entry,) = snap["in_flight"]
        assert entry["key"] == "abc"
        assert entry["phase"] == "warming"
        assert entry["pid"] == 42
        assert entry["elapsed_s"] >= 0
        tracker.finish(0)
        assert tracker.counts() == {"in_flight": 0, "queued": 3}

    def test_sync_replaces_view(self):
        tracker = live.InflightTracker()
        tracker.start(0, key="stale")
        tracker.sync(
            [{"slot": 1, "key": "fresh", "started": 0.0}], queued=7
        )
        snap = tracker.snapshot()
        assert [run["key"] for run in snap["in_flight"]] == ["fresh"]
        assert snap["queued"] == 7

    def test_phase_on_unknown_slot_ignored(self):
        tracker = live.InflightTracker()
        tracker.set_phase(99, "warming")  # must not raise
        tracker.set_pid(99, 1)
        tracker.finish(99)


class TestPrometheus:
    def test_render_counters_and_labels(self):
        metrics = EngineMetrics()
        metrics.record_execution("Stub", 1.5, 100)
        metrics.record_failure("run-a", "timeout", "t", 2, False)
        text = live.render_prometheus(
            metrics.snapshot(), {"in_flight": 2, "queued": 4}
        )
        assert "repro_sweep_runs_succeeded 1" in text
        assert 'repro_sweep_failures_by_kind{kind="timeout"} 1' in text
        assert 'repro_sweep_family_runs{family="Stub"} 1' in text
        assert "repro_sweep_in_flight 2" in text
        assert "repro_sweep_queued 4" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        text = live.render_prometheus(
            {"failures_by_kind": {'we"ird\\kind': 1}}, {}
        )
        assert '{kind="we\\"ird\\\\kind"}' in text


class TestLiveMonitor:
    def test_write_once_produces_both_files(self, tmp_path):
        tracker = live.InflightTracker()
        tracker.start(0, key="abc", description="run a")
        tracker.set_progress(2, 9)
        monitor = live.LiveMonitor(
            tracker,
            live_path=tmp_path / "live.json",
            metrics_path=tmp_path / "metrics.prom",
            metrics_source=lambda: EngineMetrics().snapshot(),
        )
        monitor.write_once()
        document = json.loads((tmp_path / "live.json").read_text())
        assert document["version"] == live.LIVE_SCHEMA_VERSION
        assert document["done"] == 2 and document["total"] == 9
        assert document["in_flight"][0]["key"] == "abc"
        assert "runs_succeeded" in document["metrics"]
        assert "repro_sweep_in_flight 1" in (
            tmp_path / "metrics.prom"
        ).read_text()

    def test_metrics_source_failure_tolerated(self, tmp_path):
        def broken():
            raise RuntimeError("source bug")

        monitor = live.LiveMonitor(
            live.InflightTracker(),
            live_path=tmp_path / "live.json",
            metrics_source=broken,
        )
        monitor.write_once()
        assert json.loads((tmp_path / "live.json").read_text())["metrics"] == {}

    def test_start_stop(self, tmp_path):
        monitor = live.LiveMonitor(
            live.InflightTracker(),
            live_path=tmp_path / "live.json",
            interval=0.05,
        )
        monitor.start()
        monitor.stop()
        assert (tmp_path / "live.json").exists()


def _run_sweep(cache_dir, workload, trace_enabled, jobs=1):
    engine = Engine(
        scale=SCALE, jobs=jobs, cache_dir=cache_dir, trace=trace_enabled
    )
    try:
        return engine.run_many(
            [
                RunRequest(RunZ(300), workload, ARCH_CONFIGS[0]),
                RunRequest(RunZ(500), workload, ARCH_CONFIGS[0]),
            ]
        )
    finally:
        engine.close()


class TestEngineTracing:
    def test_trace_requires_cache_dir(self):
        with pytest.raises(ValueError):
            Engine(scale=SCALE, trace=True)

    def test_traced_sweep_writes_merged_trace(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, trace=True)
        results = engine.run_many(
            [RunRequest(RunZ(300), workload, ARCH_CONFIGS[0])]
        )
        engine.write_stats()
        merged = engine.merged_trace_path()
        engine.close()
        assert merged.exists()
        events = trace.read_events(merged)
        assert trace.validate_events(events) == []
        names = {e.get("name") for e in events if e["event"] == "span"}
        assert {"batch", "plan", "dedup", "run", "detailed"} <= names
        # The executed result carries its phase breakdown...
        assert "detailed" in results[0].phase_times
        # ...and the stats file aggregates it into histograms.
        document = json.loads((tmp_path / "engine-stats.json").read_text())
        family = document["per_family"]["Run Z"]
        assert family["phases"]["detailed"]["samples"] == 1
        assert document["trace"] is True

    def test_run_spans_tagged_with_key(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, trace=True)
        engine.run_many([RunRequest(RunZ(300), workload, ARCH_CONFIGS[0])])
        merged = engine.merged_trace_path()
        engine.close()
        run_spans = [
            e
            for e in trace.read_events(merged)
            if e["event"] == "span" and e["name"] == "run"
        ]
        assert run_spans
        attrs = run_spans[0]["attrs"]
        assert attrs["family"] == "Run Z"
        assert len(attrs["run"]) == 64  # the content key

    def test_live_json_written(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, trace=True)
        engine.run_many([RunRequest(RunZ(300), workload, ARCH_CONFIGS[0])])
        live_path = engine.store.directory / live.LIVE_FILENAME
        engine.close()
        document = json.loads(live_path.read_text())
        assert document["total"] == 1 and document["done"] == 1
        assert document["in_flight"] == []

    def test_metrics_file_written_without_trace(self, tmp_path, workload):
        metrics_file = tmp_path / "out" / "metrics.prom"
        engine = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path / "cache",
            metrics_file=metrics_file,
        )
        engine.run_many([RunRequest(RunZ(300), workload, ARCH_CONFIGS[0])])
        engine.close()
        assert "repro_sweep_runs_succeeded 1" in metrics_file.read_text()

    def test_tracing_preserves_results_and_store_bytes(
        self, tmp_path, workload
    ):
        """Instrumentation must be parity-safe: identical statistics and
        byte-identical persisted stores with tracing on and off."""
        traced = _run_sweep(tmp_path / "traced", workload, True)
        plain = _run_sweep(tmp_path / "plain", workload, False)
        for a, b in zip(traced, plain):
            assert a.stats.counters() == b.stats.counters()
            assert a.regions == b.regions

        def shards(root):
            return sorted(
                p.relative_to(root) for p in root.glob("v*/??/*.json")
            )
        traced_files = shards(tmp_path / "traced")
        assert traced_files == shards(tmp_path / "plain")
        assert traced_files  # the sweep persisted something
        for rel in traced_files:
            assert (tmp_path / "traced" / rel).read_bytes() == (
                tmp_path / "plain" / rel
            ).read_bytes()

    def test_phase_times_not_persisted(self, tmp_path, workload):
        results = _run_sweep(tmp_path, workload, True)
        assert results[0].phase_times
        payload = results[0].to_payload()
        assert "phase_times" not in json.dumps(payload)
        # A cache hit therefore comes back without phase_times, but
        # still equal to the executed result.
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, trace=False)
        cached = engine.run_many(
            [RunRequest(RunZ(300), workload, ARCH_CONFIGS[0])]
        )
        engine.close()
        assert cached[0].phase_times == {}
        assert cached[0].stats.counters() == results[0].stats.counters()

    def test_parallel_traced_sweep(self, tmp_path, workload):
        engine = Engine(scale=SCALE, jobs=2, cache_dir=tmp_path, trace=True)
        results = engine.run_many(
            [
                RunRequest(RunZ(200 + 100 * i), workload, ARCH_CONFIGS[0])
                for i in range(3)
            ]
        )
        merged = engine.merged_trace_path()
        engine.close()
        assert len(results) == 3
        events = trace.read_events(merged)
        assert trace.validate_events(events) == []
        run_spans = [
            e for e in events if e["event"] == "span" and e["name"] == "run"
        ]
        assert len(run_spans) == 3
        # Pool workers wrote their own files; queue waits were stamped
        # in the supervisor and measured in the worker.
        workers = {e["worker"] for e in run_spans}
        assert "supervisor" not in workers
        assert any(
            e["event"] == "span" and e["name"] == "queue_wait" for e in events
        )

    def test_stale_trace_cleared_on_fresh_sweep(self, tmp_path, workload):
        _run_sweep(tmp_path, workload, True)
        first = trace.read_events(tmp_path / "v1" / trace.MERGED_FILENAME)
        # A second traced sweep over a warm store executes nothing; its
        # trace must describe this sweep, not accumulate the last one.
        engine = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path, trace=True)
        engine.run_many([RunRequest(RunZ(300), workload, ARCH_CONFIGS[0])])
        merged = engine.merged_trace_path()
        engine.close()
        second = trace.read_events(merged)
        assert sum(1 for e in second if e.get("name") == "run") == 0
        assert sum(1 for e in first if e.get("name") == "run") == 2


def _synthetic_events():
    return [
        {"event": "meta", "worker": "supervisor", "pid": 1, "mono": 0.0,
         "wall": 0.0, "seq": 0},
        {"event": "span", "name": "batch", "ts": 0.0, "dur": 10.0,
         "worker": "supervisor", "pid": 1, "seq": 3, "id": 3, "parent": None,
         "attrs": {"launched": 2}},
        {"event": "span", "name": "analysis", "ts": 0.1, "dur": 2.0,
         "worker": "supervisor", "pid": 1, "seq": 1, "id": 1, "parent": None,
         "attrs": {"family": "SimPoint", "workload": "gzip.reference"}},
        {"event": "span", "name": "run", "ts": 2.5, "dur": 7.0, "worker": "w2",
         "pid": 2, "seq": 1, "id": 1, "parent": None,
         "attrs": {"run": "aaaa1111", "family": "Run Z", "benchmark": "gzip"}},
        {"event": "span", "name": "detailed", "ts": 2.6, "dur": 6.0,
         "worker": "w2", "pid": 2, "seq": 2, "id": 2, "parent": 1,
         "attrs": {"run": "aaaa1111", "family": "Run Z", "benchmark": "gzip",
                   "backend": "numpy", "instructions": 1000}},
        {"event": "point", "name": "retry", "ts": 3.0, "worker": "supervisor",
         "pid": 1, "seq": 2, "parent": None,
         "attrs": {"run": "aaaa1111", "kind": "timeout"}},
    ]


class TestReport:
    def test_attribution_rows_group_and_sort(self):
        rows = obs_report.attribution_rows(_synthetic_events())
        assert rows[0][:4] == ["Run Z", "gzip", "detailed", "numpy"]
        assert rows[0][4] == pytest.approx(6.0)
        assert rows[0][5] == 1000
        # The supervisor-side analysis groups under its workload.
        assert any(row[2] == "analysis" for row in rows)
        # Engine lifecycle spans stay out of the table.
        assert not any(row[2] in ("batch", "run") for row in rows)

    def test_agent_rows_fold_phases_and_artifact_counters(self):
        events = _synthetic_events() + [
            {"event": "span", "name": "remote_run", "ts": 4.0, "dur": 1.5,
             "worker": "supervisor", "pid": 1, "seq": 4, "id": 4,
             "parent": None, "attrs": {"agent": "a1", "run": "bbbb2222"}},
            {"event": "point", "name": "remote_phase", "ts": 4.2,
             "worker": "supervisor", "pid": 1, "seq": 5, "parent": None,
             "attrs": {"agent": "a1", "phase": "timing_batch"}},
            {"event": "point", "name": "remote_phase", "ts": 4.3,
             "worker": "supervisor", "pid": 1, "seq": 6, "parent": None,
             "attrs": {"agent": "a1", "phase": "trace_load"}},
        ]
        per_agent = {"a1": {"runs": 1, "wall_time_s": 1.5,
                            "artifact_hits": 2, "artifact_misses": 3}}
        rows = obs_report.agent_rows(events, per_agent)
        assert rows == [["a1", 1, 1.5, 2, 2, 3]]
        # Without the stats table the counters default to zero.
        assert obs_report.agent_rows(events) == [["a1", 1, 1.5, 2, 0, 0]]

    def test_coverage_counts_runs_and_supervisor_work(self):
        stats = obs_report.coverage(_synthetic_events())
        assert stats["batch_s"] == pytest.approx(10.0)
        assert stats["run_s"] == pytest.approx(7.0)
        assert stats["supervisor_s"] == pytest.approx(2.0)
        assert stats["accounted"] == pytest.approx(0.9)

    def test_coverage_caps_at_one(self):
        events = _synthetic_events()
        for event in events:
            if event.get("name") == "run":
                event["dur"] = 50.0
        assert obs_report.coverage(events)["accounted"] == 1.0

    def test_replay_filters_by_run_prefix(self):
        lines = obs_report.replay_lines(_synthetic_events(), "aaaa")
        assert len(lines) == 3  # run + detailed spans, retry point
        assert any("retry" in line and "(event)" in line for line in lines)
        assert obs_report.replay_lines(_synthetic_events(), "zzzz") == []

    def test_chrome_trace_structure(self):
        document = obs_report.chrome_trace(_synthetic_events())
        events = document["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"supervisor", "w2"}
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["ts"] >= 0 for e in spans)
        run = next(e for e in spans if e["name"] == "run")
        assert run["dur"] == pytest.approx(7.0 * 1e6)
        assert any(e["ph"] == "i" for e in events)

    def test_load_trace_falls_back_to_events_dir(self, tmp_path):
        events_dir = tmp_path / "v1" / trace.EVENTS_SUBDIR
        events_dir.mkdir(parents=True)
        (events_dir / "w.jsonl").write_text(
            json.dumps({"event": "span", "name": "x", "ts": 1.0, "seq": 0})
            + "\n",
            encoding="utf-8",
        )
        events = obs_report.load_trace(tmp_path)
        assert [e["name"] for e in events] == ["x"]


class TestReportCli:
    @pytest.fixture()
    def traced_cache(self, tmp_path, workload):
        _run_sweep(tmp_path, workload, True)
        return tmp_path

    def test_report_renders_attribution(self, traced_cache, capsys):
        from repro.experiments.__main__ import main

        assert main(["report", "--cache-dir", str(traced_cache)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "detailed" in out
        assert "accounted" in out

    def test_report_check_passes(self, traced_cache, capsys):
        from repro.experiments.__main__ import main

        assert main(
            ["report", "--cache-dir", str(traced_cache), "--check",
             "--min-coverage", "0.9"]
        ) == 0
        assert "well-formed" in capsys.readouterr().out

    def test_report_replays_run(self, traced_cache, capsys):
        from repro.experiments.__main__ import main

        merged = traced_cache / "v1" / trace.MERGED_FILENAME
        run_key = next(
            e["attrs"]["run"]
            for e in trace.read_events(merged)
            if e.get("name") == "run"
        )
        assert main(
            ["report", "--cache-dir", str(traced_cache), "--run", run_key[:8]]
        ) == 0
        assert "event history" in capsys.readouterr().out

    def test_report_chrome_export(self, traced_cache, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_file = tmp_path / "viewer" / "trace-viewer.json"
        assert main(
            ["report", "--cache-dir", str(traced_cache),
             "--chrome", str(out_file)]
        ) == 0
        document = json.loads(out_file.read_text())
        assert document["traceEvents"]

    def test_report_without_trace_fails(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["report", "--cache-dir", str(tmp_path)]) == 1
        assert "no trace events" in capsys.readouterr().err

    def test_report_unknown_run_fails(self, traced_cache, capsys):
        from repro.experiments.__main__ import main

        assert main(
            ["report", "--cache-dir", str(traced_cache), "--run", "zzzz"]
        ) == 1
