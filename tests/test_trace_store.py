"""Tests for the zero-copy shared trace store.

The contract under test: a stored trace loads back column-for-column
identical (served memory-mapped), any identity mismatch -- stale
generator epoch, different scale, different input-set content, corrupt
bytes -- is a miss that the caller regenerates through, and concurrent
savers racing on one file converge on a single intact copy.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.isa.trace import _COLUMN_NAMES
from repro.scale import Scale
from repro.workloads import trace_store
from repro.workloads.trace_store import TraceStore

from tests.conftest import TEST_SCALE, make_micro_workload


@pytest.fixture()
def store(tmp_path):
    return TraceStore(tmp_path / "traces")


@pytest.fixture(autouse=True)
def _drain_counters():
    """Each test observes only its own hit/miss traffic."""
    trace_store.consume_counters()
    yield
    trace_store.consume_counters()


def _columns_equal(a, b) -> bool:
    return all(
        np.array_equal(
            np.asarray(getattr(a, name)), np.asarray(getattr(b, name))
        )
        for name in _COLUMN_NAMES
    )


class TestRoundTrip:
    def test_columns_identical_after_reload(self, store):
        workload = make_micro_workload()
        trace = workload.trace(TEST_SCALE)
        store.save(workload, TEST_SCALE, trace)

        loaded = store.load(workload, TEST_SCALE)
        assert loaded is not None
        assert len(loaded) == len(trace)
        assert loaded.num_blocks == trace.num_blocks
        assert _columns_equal(loaded, trace)
        counters = trace_store.consume_counters()
        assert counters["trace_cache_hits"] == 1
        assert counters["trace_cache_misses"] == 0

    def test_loaded_columns_are_memory_mapped(self, store):
        workload = make_micro_workload()
        store.save(workload, TEST_SCALE, workload.trace(TEST_SCALE))
        loaded = store.load(workload, TEST_SCALE)
        assert isinstance(loaded.op, np.memmap)
        assert not loaded.op.flags.writeable

    def test_save_is_idempotent(self, store):
        workload = make_micro_workload()
        trace = workload.trace(TEST_SCALE)
        path1 = store.save(workload, TEST_SCALE, trace)
        path2 = store.save(workload, TEST_SCALE, trace)
        assert path1 == path2
        assert _columns_equal(store.load(workload, TEST_SCALE), trace)


class TestMissesNeverTrusted:
    def test_absent_file_is_miss(self, store):
        workload = make_micro_workload()
        assert store.load(workload, TEST_SCALE) is None
        assert trace_store.consume_counters()["trace_cache_misses"] == 1

    def test_scale_mismatch_is_miss(self, store):
        workload = make_micro_workload()
        store.save(workload, TEST_SCALE, workload.trace(TEST_SCALE))
        assert store.load(workload, Scale(7)) is None

    def test_input_content_mismatch_is_miss(self, store):
        workload = make_micro_workload()
        store.save(workload, TEST_SCALE, workload.trace(TEST_SCALE))
        # Same input-set *name*, different content: must not alias.
        longer = make_micro_workload(length_m=800.0)
        assert longer.input_set.name == workload.input_set.name
        assert store.load(longer, TEST_SCALE) is None

    def test_stale_epoch_rejected_and_regenerated(self, store, monkeypatch):
        import repro.workloads.generator as generator

        workload = make_micro_workload()
        trace = workload.trace(TEST_SCALE)
        store.save(workload, TEST_SCALE, trace)

        # A generator fix bumps the epoch: the stored file is now a
        # miss, and saving through the same store replaces it.
        monkeypatch.setattr(generator, "TRACE_EPOCH", generator.TRACE_EPOCH + 1)
        assert store.load(workload, TEST_SCALE) is None
        assert trace_store.consume_counters()["trace_cache_misses"] == 1
        store.save(workload, TEST_SCALE, trace)
        assert store.load(workload, TEST_SCALE) is not None

    def test_corrupt_file_is_miss(self, store):
        workload = make_micro_workload()
        store.save(workload, TEST_SCALE, workload.trace(TEST_SCALE))
        path = store.path_for(store.key_for(workload, TEST_SCALE))
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.load(workload, TEST_SCALE) is None

    def test_bad_magic_is_miss(self, store):
        workload = make_micro_workload()
        store.save(workload, TEST_SCALE, workload.trace(TEST_SCALE))
        path = store.path_for(store.key_for(workload, TEST_SCALE))
        blob = bytearray(path.read_bytes())
        blob[:8] = b"NOTATRAC"
        path.write_bytes(bytes(blob))
        assert store.load(workload, TEST_SCALE) is None


class TestConcurrency:
    def test_racing_savers_converge_on_one_intact_file(self, store):
        workload = make_micro_workload()
        trace = workload.trace(TEST_SCALE)
        errors = []

        def save():
            try:
                store.save(workload, TEST_SCALE, trace)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=save) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        loaded = store.load(workload, TEST_SCALE)
        assert loaded is not None
        assert _columns_equal(loaded, trace)
        # The atomic renames leave no temp-file debris behind.
        directory = store.path_for(store.key_for(workload, TEST_SCALE)).parent
        assert [p for p in directory.iterdir() if p.suffix == ".tmp"] == []


class TestActivation:
    def test_workload_trace_uses_active_store(self, store):
        from repro.workloads.inputs import clear_trace_cache

        trace_store.activate(store)
        try:
            clear_trace_cache()
            first = make_micro_workload()
            reference = first.trace(TEST_SCALE)  # miss: generated + saved
            counters = trace_store.consume_counters()
            assert counters["trace_cache_misses"] == 1

            # The in-process LRU answers first; once cleared (as in a
            # fresh worker process), the stored file is loaded instead
            # of regenerating.
            clear_trace_cache()
            again = make_micro_workload()
            loaded = again.trace(TEST_SCALE)
            counters = trace_store.consume_counters()
            assert counters["trace_cache_hits"] == 1
            assert _columns_equal(loaded, reference)
        finally:
            trace_store.activate(None)

    def test_env_activation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_store.TRACE_DIR_ENV_VAR, str(tmp_path / "t"))
        active = trace_store.active_store()
        assert active is not None
        assert active.root == tmp_path / "t"
        monkeypatch.delenv(trace_store.TRACE_DIR_ENV_VAR)
        assert trace_store.active_store() is None

    def test_mmap_loaded_trace_simulates_identically(self, store):
        from repro.cpu.config import ARCH_CONFIGS
        from repro.cpu.simulator import Simulator

        workload = make_micro_workload()
        trace = workload.trace(TEST_SCALE)
        store.save(workload, TEST_SCALE, trace)
        loaded = store.load(workload, TEST_SCALE)

        simulator = Simulator(ARCH_CONFIGS[0])
        native = simulator.run_region(trace, 0, len(trace) // 2)
        mapped = simulator.run_region(loaded, 0, len(loaded) // 2)
        assert mapped.stats == native.stats
