"""Tests for bottleneck, profile and architectural characterizations."""

import numpy as np
import pytest

from repro.characterization.architectural import (
    ARCHITECTURAL_METRICS,
    architectural_distance,
    metric_vector,
)
from repro.characterization.bottleneck import (
    BottleneckResult,
    bottleneck_ranks,
    cumulative_distance_by_significance,
    normalized_rank_distance,
    rank_distance,
)
from repro.characterization.plackett_burman import PlackettBurmanDesign
from repro.characterization.profile import MIN_EXPECTED, compare_profiles
from repro.cpu.stats import SimulationStats


class TestRankDistance:
    def test_identical_vectors(self):
        assert rank_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_swap(self):
        assert rank_distance([1, 2], [2, 1]) == pytest.approx(np.sqrt(2))

    def test_normalized_range(self):
        forward = list(range(1, 44))
        backward = list(reversed(forward))
        assert normalized_rank_distance(forward, forward) == 0.0
        assert normalized_rank_distance(forward, backward) == pytest.approx(100.0)


class TestBottleneck:
    def test_synthetic_model_ranks(self):
        """Drive the PB machinery with a synthetic CPI model whose
        bottlenecks are known by construction."""
        design = PlackettBurmanDesign()

        def fake_cpi(config):
            # Memory latency dominates, then ROB, then a touch of BHT.
            return (
                config.mem_latency_first * 0.01
                - config.rob_entries * 0.005
                - config.bht_entries * 0.00001
            )

        result = bottleneck_ranks(
            technique=None, workload=None, scale=None,
            design=design, run_callback=fake_cpi,
        )
        names = [p.name for p in design.parameters]
        assert result.ranks[names.index("mem_latency_first")] == 1
        assert result.ranks[names.index("rob_entries")] == 2

    def test_distance_to(self):
        a = BottleneckResult(ranks=[1, 2, 3], effects=np.zeros(3), cpis=[])
        b = BottleneckResult(ranks=[3, 2, 1], effects=np.zeros(3), cpis=[])
        assert a.distance_to(b) == pytest.approx(np.sqrt(8))

    def test_cumulative_distance_monotone(self):
        reference = BottleneckResult(
            ranks=list(range(1, 44)), effects=np.zeros(43), cpis=[]
        )
        shuffled = list(range(1, 44))
        shuffled[0], shuffled[42] = shuffled[42], shuffled[0]
        other = BottleneckResult(ranks=shuffled, effects=np.zeros(43), cpis=[])
        series = cumulative_distance_by_significance(other, reference)
        assert len(series) == 43
        assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
        assert series[-1] == pytest.approx(other.distance_to(reference))


class TestProfileComparison:
    def test_identical_profiles_similar(self):
        profile = np.array([100.0, 200.0, 50.0, 700.0])
        comparison = compare_profiles(profile, profile)
        assert comparison.statistic == pytest.approx(0.0)
        assert comparison.similar

    def test_scaled_profiles_similar(self):
        reference = np.array([100.0, 200.0, 50.0, 700.0])
        comparison = compare_profiles(reference * 0.1, reference)
        assert comparison.statistic == pytest.approx(0.0)
        assert comparison.similar

    def test_different_profiles_detected(self):
        reference = np.array([1000.0, 1000.0, 1000.0, 10.0])
        observed = np.array([10.0, 1000.0, 2000.0, 1000.0])
        comparison = compare_profiles(observed, reference)
        assert not comparison.similar
        assert comparison.statistic > comparison.critical_value

    def test_small_expected_pooled(self):
        reference = np.array([1000.0] + [0.5] * 20)
        observed = np.array([1000.0] + [0.5] * 20)
        comparison = compare_profiles(observed, reference)
        # 20 sub-threshold cells pool into one: dof = 2 cells - 1.
        assert comparison.degrees_of_freedom == 1

    def test_new_code_penalized(self):
        # The technique executes a block the reference never ran.
        reference = np.array([1000.0, 1000.0, 0.0])
        observed = np.array([500.0, 500.0, 1000.0])
        comparison = compare_profiles(observed, reference)
        assert comparison.statistic > 0

    def test_normalized_distance(self):
        reference = np.array([100.0, 100.0])
        observed = np.array([150.0, 50.0])
        comparison = compare_profiles(observed, reference)
        assert comparison.normalized == pytest.approx(
            comparison.statistic / comparison.degrees_of_freedom
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compare_profiles([1.0], [1.0, 2.0])

    def test_zero_profiles_rejected(self):
        with pytest.raises(ValueError):
            compare_profiles([0.0, 0.0], [1.0, 1.0])


def _stats(ipc=1.0, bacc=0.9, dl1=0.9, l2=0.5):
    stats = SimulationStats()
    stats.instructions = 1000
    stats.cycles = int(1000 / ipc)
    stats.branches = 100
    stats.mispredictions = int(100 * (1 - bacc))
    stats.dl1_accesses = 300
    stats.dl1_misses = int(300 * (1 - dl1))
    stats.l2_accesses = 100
    stats.l2_misses = int(100 * (1 - l2))
    return stats


class TestArchitectural:
    def test_metric_vector_layout(self):
        vector = metric_vector([_stats(), _stats()])
        assert len(vector) == 2 * len(ARCHITECTURAL_METRICS)

    def test_identical_stats_zero_distance(self):
        stats = [_stats(), _stats(ipc=2.0)]
        assert architectural_distance(stats, stats) == pytest.approx(0.0)

    def test_distance_grows_with_difference(self):
        reference = [_stats(ipc=1.0)]
        near = [_stats(ipc=1.05)]
        far = [_stats(ipc=2.0)]
        assert architectural_distance(near, reference) < architectural_distance(
            far, reference
        )

    def test_normalization_is_relative(self):
        # A 25% IPC error counts the same at any absolute IPC.
        a = architectural_distance([_stats(ipc=1.25)], [_stats(ipc=1.0)])
        b = architectural_distance([_stats(ipc=2.5)], [_stats(ipc=2.0)])
        assert a == pytest.approx(b, rel=1e-6)

    def test_config_count_mismatch(self):
        with pytest.raises(ValueError):
            architectural_distance([_stats()], [_stats(), _stats()])
