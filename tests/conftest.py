"""Shared fixtures: micro-scale workloads so tests run fast."""

from __future__ import annotations

import pytest

from repro.isa.instructions import InstructionTemplate, OpClass
from repro.scale import Scale
from repro.workloads.inputs import InputSetSpec, Workload
from repro.workloads.program import (
    BasicBlock,
    LoopNest,
    LoopStep,
    MemoryStream,
    Phase,
    SyntheticProgram,
    TerminatorKind,
)

#: A very small scale used throughout the tests (5 instructions per
#: paper-M keeps even "reference" runs to a few thousand instructions).
TEST_SCALE = Scale(5)


@pytest.fixture(autouse=True)
def _isolate_shared_store_env(monkeypatch):
    """Start every test without inherited trace/checkpoint stores.

    An engine with a cache dir exports the store locations through the
    environment (so its pool workers inherit them); a test that does
    not close its engine would otherwise leak an active store into
    every later test in the process.
    """
    from repro.cpu import checkpoint
    from repro.obs import live, phases, trace
    from repro.workloads import trace_store

    for var in (
        trace_store.TRACE_DIR_ENV_VAR,
        checkpoint.CHECKPOINT_DIR_ENV_VAR,
        checkpoint.CHECKPOINT_INTERVAL_ENV_VAR,
        trace.TRACE_ENV_VAR,
        trace.EVENTS_DIR_ENV_VAR,
        live.METRICS_FILE_ENV_VAR,
    ):
        monkeypatch.delenv(var, raising=False)
    yield
    # A test that activates the tracer or phase ledger and fails before
    # cleaning up must not leak spans into every later test.
    trace.deactivate()
    phases.set_notifier(None)
    phases.drain()


def make_micro_program(name: str = "micro") -> SyntheticProgram:
    """A tiny hand-built two-phase program exercising every op class."""
    stream_a = MemoryStream(base=0x1000_0000, footprint=1 << 14, stride=8)
    stream_b = MemoryStream(
        base=0x2000_0000, footprint=1 << 18, stride=16, random_fraction=0.3,
        reuse_shift=4,
    )
    blocks = [
        # 0: compute + load, conditional terminator
        BasicBlock(
            block_id=0,
            templates=(
                InstructionTemplate(OpClass.IALU, dst=1, src1=2, src2=3),
                InstructionTemplate(OpClass.LOAD, dst=4, src1=1),
                InstructionTemplate(OpClass.IMULT, dst=5, src1=4, src2=1,
                                    trivial_probability=0.5),
                InstructionTemplate(OpClass.BRANCH, src1=5),
            ),
            terminator=TerminatorKind.COND_BRANCH,
            fallthrough=1,
            memory=(None, stream_a, None, None),
        ),
        # 1: fp + store
        BasicBlock(
            block_id=1,
            templates=(
                InstructionTemplate(OpClass.FPALU, dst=6, src1=7, src2=8),
                InstructionTemplate(OpClass.STORE, src1=6, src2=9),
                InstructionTemplate(OpClass.BRANCH, src1=6),
            ),
            terminator=TerminatorKind.COND_BRANCH,
            fallthrough=None,
            memory=(None, stream_b, None),
        ),
        # 2: alternate path
        BasicBlock(
            block_id=2,
            templates=(
                InstructionTemplate(OpClass.IDIV, dst=10, src1=11, src2=12),
                InstructionTemplate(OpClass.BRANCH, src1=10),
            ),
            terminator=TerminatorKind.COND_BRANCH,
            fallthrough=None,
        ),
        # 3: call site
        BasicBlock(
            block_id=3,
            templates=(
                InstructionTemplate(OpClass.IALU, dst=13, src1=14, src2=15),
                InstructionTemplate(OpClass.CALL),
            ),
            terminator=TerminatorKind.CALL,
        ),
        # 4: callee body
        BasicBlock(
            block_id=4,
            templates=(
                InstructionTemplate(OpClass.FPMULT, dst=16, src1=17, src2=18),
            ),
            terminator=TerminatorKind.FALLTHROUGH,
            fallthrough=5,
        ),
        # 5: return
        BasicBlock(
            block_id=5,
            templates=(
                InstructionTemplate(OpClass.IALU, dst=19, src1=16, src2=20),
                InstructionTemplate(OpClass.RETURN),
            ),
            terminator=TerminatorKind.RETURN,
        ),
    ]
    nest_main = LoopNest(
        steps=(
            LoopStep(block=0, alt_block=2, alt_probability=0.2),
            LoopStep(block=1),
        ),
        mean_trips=8,
    )
    nest_call = LoopNest(
        steps=(
            LoopStep(block=3),
            LoopStep(block=4),
            LoopStep(block=5),
            LoopStep(block=0),
        ),
        mean_trips=4,
    )
    phases = [
        Phase(name="alpha", nests=(nest_main,), weights=(1.0,)),
        Phase(
            name="beta",
            nests=(nest_main, nest_call),
            weights=(0.4, 0.6),
            footprint_scale=2.0,
            divert_scale=1.5,
        ),
    ]
    return SyntheticProgram(name=name, blocks=blocks, phases=phases)


def make_micro_workload(
    length_m: float = 400.0,
    footprint_scale: float = 1.0,
    input_name: str = "reference",
    seed: int = 99,
) -> Workload:
    """A workload over the micro program (about 2000 instructions at
    TEST_SCALE for the default length)."""
    program = make_micro_program()
    spec = InputSetSpec(
        name=input_name,
        length_m=length_m,
        phase_fractions=(("alpha", 0.5), ("beta", 0.5)),
        footprint_scale=footprint_scale,
    )
    return Workload(
        benchmark="micro", program=program, input_set=spec, seed=seed
    )


@pytest.fixture(scope="session")
def micro_program() -> SyntheticProgram:
    return make_micro_program()


@pytest.fixture(scope="session")
def micro_workload() -> Workload:
    return make_micro_workload()


@pytest.fixture(scope="session")
def micro_trace(micro_workload):
    return micro_workload.trace(TEST_SCALE)


@pytest.fixture(scope="session")
def test_scale() -> Scale:
    return TEST_SCALE
