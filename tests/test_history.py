"""Sweep-history store, resource telemetry, compare, dashboard, lint.

Covers the observability surfaces added with the sweep-history
observatory: the append-only content-addressed history store (crash
safety, concurrency, digest rejection), per-run resource sampling on
the local / batched / remote execution paths, the ``report compare``
noise-band regression detector and its ``--check`` exit codes, the
member-weighted live-telemetry accounting, the strict Prometheus
exposition lint, and the self-contained HTML dashboard.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.engine import Engine, RunRequest
from repro.engine.metrics import EngineMetrics
from repro.obs import history as obs_history
from repro.obs import resources as obs_resources
from repro.obs.live import InflightTracker, lint_prometheus, render_prometheus
from repro.obs.report import _chrome_track, compare_records
from repro.techniques.truncated import RunZ

from tests.test_distributed import FakeTask, make_ledger
from tests.test_engine import SCALE


def _record(
    batch_s=10.0, p50=0.01, p90=0.012, fingerprint="f",
    recorded_unix=1000.0, **stats
):
    """A minimal synthetic sweep record (not store-appended)."""
    doc = {
        "runs_requested": 4,
        "runs_launched": 4,
        "runs_succeeded": 4,
        "cache_hits": 0,
        "failures": 0,
        "batch_time_s": batch_s,
        "wall_time_s": batch_s,
        "resources": {"cpu_time_s": batch_s / 2, "max_rss_bytes": 10 << 20},
        "per_family": {
            "Run Z": {
                "phases": {
                    "detailed": {"p50_s": p50, "p90_s": p90, "max_s": p90},
                }
            }
        },
    }
    doc.update(stats)
    return obs_history.sweep_record(
        doc, fingerprint=fingerprint, identity={"backend": "numpy"},
        recorded_unix=recorded_unix,
    )


# -- store ---------------------------------------------------------------------


class TestHistoryStore:
    def test_append_read_roundtrip(self, tmp_path):
        record = _record()
        record_id = obs_history.append(tmp_path, record)
        loaded = obs_history.read_records(tmp_path)
        assert len(loaded) == 1
        assert loaded[0]["id"] == record_id
        assert loaded[0]["stats"]["batch_time_s"] == 10.0

    def test_id_is_content_addressed(self, tmp_path):
        a = _record(recorded_unix=111.0)
        b = _record(recorded_unix=111.0)
        assert obs_history.record_id(a) == obs_history.record_id(b)
        assert obs_history.record_id(_record(batch_s=11.0)) != (
            obs_history.record_id(a)
        )

    def test_duplicate_ids_deduplicate_on_read(self, tmp_path):
        record = _record(recorded_unix=5.0)
        obs_history.append(tmp_path, dict(record))
        obs_history.append(tmp_path, dict(record))
        assert len(obs_history.read_records(tmp_path)) == 1

    def test_truncated_tail_is_dropped(self, tmp_path):
        """A kill mid-append leaves a partial final line: the reader
        drops that record and keeps every earlier one."""
        first = obs_history.append(tmp_path, _record(recorded_unix=1.0))
        second = _record(recorded_unix=2.0)
        obs_history.append(tmp_path, second)
        shard = obs_history.history_dir(tmp_path) / (
            obs_history.record_id(second)[:2] + ".jsonl"
        )
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) - 30])  # torn final write
        survivors = {r["id"] for r in obs_history.read_records(tmp_path)}
        assert first in survivors or survivors == set()
        assert obs_history.record_id(second) not in survivors

    def test_tampered_record_is_rejected(self, tmp_path):
        record_id = obs_history.append(tmp_path, _record())
        shard = obs_history.history_dir(tmp_path) / (record_id[:2] + ".jsonl")
        doc = json.loads(shard.read_text().splitlines()[-1])
        doc["stats"]["batch_time_s"] = 999.0  # edited without re-hashing
        shard.write_text(json.dumps(doc) + "\n")
        assert obs_history.read_records(tmp_path) == []

    def test_concurrent_appends_all_land(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_append_worker, args=(str(tmp_path), i))
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        records = obs_history.read_records(tmp_path)
        assert len(records) == 4 * 8

    def test_resolve_by_negative_index_and_prefix(self, tmp_path):
        ids = [
            obs_history.append(tmp_path, _record(recorded_unix=float(i)))
            for i in range(3)
        ]
        records = obs_history.read_records(tmp_path)
        assert obs_history.resolve(records, "-1")["id"] == ids[-1]
        assert obs_history.resolve(records, "-3")["id"] == ids[0]
        assert obs_history.resolve(records, ids[1][:10])["id"] == ids[1]
        with pytest.raises(ValueError):
            obs_history.resolve(records, "-9")
        with pytest.raises(ValueError):
            obs_history.resolve(records, "zz-no-such")

    def test_grid_fingerprint_order_independent(self):
        assert obs_history.grid_fingerprint(["b", "a"]) == (
            obs_history.grid_fingerprint(("a", "b", "a"))
        )
        assert obs_history.grid_fingerprint(["a"]) != (
            obs_history.grid_fingerprint(["b"])
        )


def _append_worker(root: str, index: int) -> None:
    from repro.obs import history

    for j in range(8):
        history.append(
            Path(root), _record(recorded_unix=float(index * 100 + j))
        )


# -- resources -----------------------------------------------------------------


class TestResources:
    def test_sample_since_shape(self):
        baseline = obs_resources.snapshot()
        _ = sum(i * i for i in range(50_000))  # burn a little CPU
        sample = obs_resources.sample_since(baseline)
        assert sample is None or (
            sample["max_rss_bytes"] > 0
            and sample["cpu_s"] >= 0.0
            and sample["cpu_s"] == pytest.approx(
                sample["cpu_user_s"] + sample["cpu_system_s"], abs=1e-6
            )
        )

    def test_share_divides_cpu_keeps_rss(self):
        sample = {
            "max_rss_bytes": 100,
            "cpu_s": 8.0,
            "cpu_user_s": 6.0,
            "cpu_system_s": 2.0,
        }
        shared = obs_resources.share(sample, 4)
        assert shared["cpu_s"] == 2.0
        assert shared["max_rss_bytes"] == 100
        assert obs_resources.share(None, 4) is None

    def test_normalize_rejects_garbage(self):
        assert obs_resources.normalize(None) is None
        assert obs_resources.normalize("nope") is None
        assert obs_resources.normalize({"cpu_s": "NaN-ish"}) is None
        ok = obs_resources.normalize(
            {"max_rss_bytes": 7.0, "cpu_s": 1, "cpu_user_s": 1,
             "cpu_system_s": 0}
        )
        assert ok == {
            "max_rss_bytes": 7, "cpu_s": 1.0, "cpu_user_s": 1.0,
            "cpu_system_s": 0.0,
        }

    def test_metrics_fold(self):
        metrics = EngineMetrics()
        metrics.record_resources(
            {"max_rss_bytes": 10, "cpu_s": 1.0, "cpu_user_s": 0.75,
             "cpu_system_s": 0.25}
        )
        metrics.record_resources(
            {"max_rss_bytes": 30, "cpu_s": 0.5, "cpu_user_s": 0.5,
             "cpu_system_s": 0.0}
        )
        metrics.record_resources(None)  # ignored
        doc = metrics.snapshot()["resources"]
        assert doc["max_rss_bytes"] == 30
        assert doc["cpu_time_s"] == pytest.approx(1.5)
        assert doc["samples"] == 2
        assert doc["run_cpu_s"]["max"] == pytest.approx(1.0)


class TestResourceTelemetryEndToEnd:
    def _sweep(self, tmp_path, micro_workload, **engine_kwargs):
        engine = Engine(
            scale=SCALE, cache_dir=tmp_path / "cache", history=True,
            **engine_kwargs,
        )
        requests = [
            RunRequest(RunZ(500), micro_workload, config)
            for config in ARCH_CONFIGS[:3]
        ]
        engine.run_many(requests)
        engine.close()
        return engine

    def test_local_runs_sample_resources(self, tmp_path, micro_workload):
        engine = self._sweep(tmp_path, micro_workload, jobs=1)
        doc = engine.metrics.snapshot()["resources"]
        assert doc["samples"] == 3
        assert doc["max_rss_bytes"] > 0

    def test_batched_runs_share_resources(self, tmp_path, micro_workload):
        engine = self._sweep(
            tmp_path, micro_workload, jobs=1, batch_configs=3
        )
        doc = engine.metrics.snapshot()["resources"]
        assert doc["samples"] == 3  # every member attributed
        assert doc["max_rss_bytes"] > 0

    def test_remote_completion_carries_resources(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        lease, _ = ledger.grant(agent)
        sample = {"max_rss_bytes": 5 << 20, "cpu_s": 0.25,
                  "cpu_user_s": 0.2, "cpu_system_s": 0.05}
        status = ledger.complete(
            agent, lease.lease_id, "k1",
            [{"family": "Stub", "cpi": 1.0}], 0.5, {},
            resources=sample,
        )
        assert status == "ok"
        events = ledger.collect()
        assert events[0][0] == "complete"
        assert events[0][6] == sample


# -- compare -------------------------------------------------------------------


class TestCompare:
    def test_identical_sweeps_have_no_regressions(self):
        result = compare_records(_record(), _record())
        assert result["regressions"] == []
        assert result["aligned"]

    def test_phase_slowdown_flagged(self):
        base = _record(p50=0.010, p90=0.011)
        cand = _record(p50=0.020, p90=0.022)
        result = compare_records(base, cand)
        assert any("detailed" in line for line in result["regressions"])

    def test_phase_jitter_within_band_passes(self):
        base = _record(p50=0.010, p90=0.014)  # wide within-sweep spread
        cand = _record(p50=0.013, p90=0.015)
        assert compare_records(base, cand)["regressions"] == []

    def test_batch_time_regression_flagged(self):
        result = compare_records(_record(batch_s=4.0), _record(batch_s=20.0))
        assert any("batch_time_s" in line for line in result["regressions"])

    def test_improvement_not_flagged(self):
        result = compare_records(_record(batch_s=20.0), _record(batch_s=4.0))
        assert result["regressions"] == []

    def test_fingerprint_mismatch_is_drift(self):
        result = compare_records(
            _record(fingerprint="aaa"), _record(fingerprint="bbb")
        )
        assert not result["aligned"]
        assert result["regressions"] == []

    def test_check_exit_codes(self, tmp_path):
        from repro.obs.report import main as report_main

        obs_history.append(tmp_path, _record(recorded_unix=1.0))
        obs_history.append(
            tmp_path, _record(recorded_unix=2.0, runs_requested=5)
        )
        obs_history.append(
            tmp_path, _record(recorded_unix=3.0, p50=0.5, p90=0.55,
                              batch_s=100.0)
        )
        common = ["--cache-dir", str(tmp_path), "--check"]
        assert report_main(["compare", "-3", "-2"] + common) == 0
        assert report_main(["compare", "-3", "-1"] + common) == 1
        assert report_main(["compare", "-3", "nonexistent"] + common) == 2


# -- engine integration --------------------------------------------------------


class TestEngineHistory:
    def _run(self, cache_dir, micro_workload, history):
        engine = Engine(
            scale=SCALE, jobs=1, cache_dir=cache_dir, history=history
        )
        engine.run_many(
            [RunRequest(RunZ(500), micro_workload, ARCH_CONFIGS[0])]
        )
        engine.close()
        return engine

    @staticmethod
    def _store_snapshot(cache_dir):
        return {
            str(p.relative_to(cache_dir)): p.read_bytes()
            for p in sorted(Path(cache_dir).glob("v*/??/*.json"))
        }

    def test_sweep_appends_one_record(self, tmp_path, micro_workload):
        engine = self._run(tmp_path / "c", micro_workload, history=True)
        assert engine.last_history_id is not None
        records = obs_history.read_records(tmp_path / "c")
        assert len(records) == 1
        assert records[0]["sweep"]["backend"] == engine._default_backend
        assert records[0]["stats"]["runs_succeeded"] == 1

    def test_same_grid_same_fingerprint(self, tmp_path, micro_workload):
        self._run(tmp_path / "c", micro_workload, history=True)
        self._run(tmp_path / "c", micro_workload, history=True)
        records = obs_history.read_records(tmp_path / "c")
        assert len(records) == 2
        prints = {r["sweep"]["fingerprint"] for r in records}
        assert len(prints) == 1

    def test_disabled_records_nothing(self, tmp_path, micro_workload):
        engine = self._run(tmp_path / "c", micro_workload, history=False)
        assert engine.last_history_id is None
        assert not obs_history.history_dir(tmp_path / "c").exists()

    def test_store_bytes_identical_with_and_without(
        self, tmp_path, micro_workload
    ):
        self._run(tmp_path / "on", micro_workload, history=True)
        self._run(tmp_path / "off", micro_workload, history=False)
        on = self._store_snapshot(tmp_path / "on")
        off = self._store_snapshot(tmp_path / "off")
        assert on and on == off

    def test_env_var_disables(self, tmp_path, micro_workload, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY", "0")
        engine = self._run(tmp_path / "c", micro_workload, history=None)
        assert engine.last_history_id is None


# -- live telemetry: member weighting + prometheus lint ------------------------


class TestMemberWeighting:
    def test_tracker_counts_weight_batches(self):
        tracker = InflightTracker()
        tracker.set_queue(7)
        tracker.start(1, key="run-a", runs=4)
        tracker.start(2, key="run-b")
        counts = tracker.counts()
        assert counts["in_flight"] == 5
        assert counts["queued"] == 7
        doc = tracker.snapshot()
        assert doc["in_flight_runs"] == 5


class TestPrometheus:
    def _metrics(self):
        metrics = EngineMetrics()
        metrics.runs_requested = 3
        metrics.record_resources(
            {"max_rss_bytes": 1 << 20, "cpu_s": 0.5, "cpu_user_s": 0.5,
             "cpu_system_s": 0.0}
        )
        return metrics.snapshot()

    def test_every_series_has_preamble(self):
        text = render_prometheus(self._metrics(), {"in_flight": 1, "queued": 2})
        names = set()
        for line in text.splitlines():
            if line and not line.startswith("#"):
                names.add(line.split("{")[0].split(" ")[0])
        for name in names:
            assert f"# HELP {name} " in text, name
            assert f"# TYPE {name} gauge" in text, name
        assert "repro_sweep_run_rss_bytes" in names
        assert "repro_sweep_run_cpu_seconds" in names

    def test_render_passes_lint(self):
        text = render_prometheus(
            self._metrics(), {"in_flight": 0, "queued": 0},
            [{"agent": "a1", "runs": 2, "wall_time_s": 1.0,
              "artifact_hits": 3, "artifact_misses": 1}],
        )
        assert lint_prometheus(text) == []

    def test_lint_catches_problems(self):
        assert lint_prometheus("repro_x 1\n")  # no preamble
        assert lint_prometheus(
            "# HELP repro_x h\n# TYPE repro_x gauge\nrepro_x notanumber\n"
        )
        assert lint_prometheus(  # not an exposition-format type kind
            "# HELP repro_x h\n# TYPE repro_x gauges\nrepro_x 1\n"
        )
        assert lint_prometheus(  # interleaved groups
            "# HELP a h\n# TYPE a gauge\na 1\n"
            "# HELP b h\n# TYPE b gauge\nb 1\na 2\n"
        )
        assert lint_prometheus(  # preamble without samples
            "# HELP a h\n# TYPE a gauge\n"
        )


# -- chrome export routing -----------------------------------------------------


class TestChromeTracks:
    def test_remote_events_route_to_agent_tracks(self):
        remote_phase = {
            "name": "remote_phase", "worker": "supervisor",
            "attrs": {"agent": "a1", "phase": "detailed"},
        }
        remote_run = {
            "name": "remote_run", "worker": "supervisor",
            "attrs": {"agent": "a2"},
        }
        local = {"name": "run", "worker": "w3", "attrs": {}}
        assert _chrome_track(remote_phase) == "agent:a1"
        assert _chrome_track(remote_run) == "agent:a2"
        assert _chrome_track(local) == "w3"


# -- dashboard -----------------------------------------------------------------


class TestDashboard:
    def test_self_contained_html(self, tmp_path):
        obs_history.append(tmp_path, _record(recorded_unix=1.0))
        obs_history.append(
            tmp_path, obs_history.bench_record(
                "batch", {"benchmark": "x", "speedup_cold": 3.0}
            )
        )
        from repro.obs.dashboard import render_html

        text = render_html(tmp_path, bench_dir=tmp_path)
        assert "<svg" in text and "</html>" in text
        for banned in ("http://", "https://", "src=", "href=", "@import"):
            assert banned not in text, banned

    def test_cli_writes_file(self, tmp_path):
        from repro.obs.report import main as report_main

        obs_history.append(tmp_path, _record())
        out = tmp_path / "dash.html"
        code = report_main(
            ["dashboard", "--cache-dir", str(tmp_path), "--html", str(out)]
        )
        assert code == 0
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")


class TestHistoryCLI:
    def test_history_listing(self, tmp_path, capsys):
        from repro.obs.report import main as report_main

        obs_history.append(tmp_path, _record())
        assert report_main(["history", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "batch_s" in out

    def test_empty_store_exits_nonzero(self, tmp_path):
        from repro.obs.report import main as report_main

        assert report_main(["history", "--cache-dir", str(tmp_path)]) == 1
