"""Tests for Machine construction from configurations."""

import pytest

from repro.cpu.config import NLP, ProcessorConfig
from repro.cpu.machine import Machine


class TestMachine:
    def test_geometry_from_config(self):
        config = ProcessorConfig(
            dl1_size_kb=32, dl1_assoc=2, dl1_block=32,
            l2_size_kb=256, l2_assoc=4, l2_block=64,
        )
        machine = Machine(config)
        assert machine.dl1.num_sets == 32 * 1024 // (2 * 32)
        assert machine.l2.num_sets == 256 * 1024 // (4 * 64)
        assert machine.dl1.parent is machine.l2
        assert machine.il1.parent is machine.l2
        assert machine.l2.memory is machine.memory

    def test_predictor_kind(self):
        config = ProcessorConfig(branch_predictor="bimodal")
        # The reference backend builds the reference predictor classes.
        machine = Machine(config, backend="python")
        from repro.cpu.branch import BimodalPredictor
        assert isinstance(machine.predictor, BimodalPredictor)
        # Kernel backends carry the same kind in flat form.
        machine = Machine(config, backend="numpy")
        assert machine.predictor.kind_name == "bimodal"

    def test_nlp_enables_dl1_prefetch_only(self):
        machine = Machine(ProcessorConfig(), NLP)
        assert machine.dl1.next_line_prefetch
        assert not machine.il1.next_line_prefetch
        assert not machine.l2.next_line_prefetch

    def test_default_no_prefetch(self):
        machine = Machine(ProcessorConfig())
        assert not machine.dl1.next_line_prefetch

    def test_cache_snapshot_keys(self):
        snapshot = Machine(ProcessorConfig()).cache_snapshot()
        for key in (
            "il1_hits", "il1_misses", "dl1_hits", "dl1_misses",
            "l2_hits", "l2_misses", "itlb_misses", "dtlb_misses",
            "prefetches",
        ):
            assert key in snapshot
            assert snapshot[key] == 0

    def test_pb_extremes_constructible(self):
        from repro.cpu.config import pb_config
        Machine(pb_config([1] * 43))
        Machine(pb_config([-1] * 43))

    def test_tlb_sizes(self):
        machine = Machine(ProcessorConfig(itlb_entries=16, dtlb_entries=128))
        assert machine.itlb.assoc * (machine.itlb.set_mask + 1) == 16
        assert machine.dtlb.assoc * (machine.dtlb.set_mask + 1) == 128
