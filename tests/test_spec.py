"""Tests for the ten benchmark models (Table 2)."""

import numpy as np
import pytest

from repro.scale import Scale
from repro.workloads.inputs import INPUT_SET_NAMES
from repro.workloads.spec import (
    BENCHMARK_NAMES,
    available_input_sets,
    get_benchmark,
    get_workload,
)


class TestRegistry:
    def test_ten_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 10

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("linpack")

    def test_benchmarks_cached(self):
        assert get_benchmark("gzip") is get_benchmark("gzip")

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_builds(self, name):
        benchmark = get_benchmark(name)
        assert benchmark.program.num_blocks > 5
        assert "reference" in benchmark.input_sets

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_input_sets_are_canonical(self, name):
        for input_set in get_benchmark(name).input_sets:
            assert input_set in INPUT_SET_NAMES

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_reference_long_enough_for_truncation(self, name):
        # FF 4000M + Run 2000M must land inside every reference stream.
        reference = get_benchmark(name).input_sets["reference"]
        assert reference.length_m > 6000

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_reduced_inputs_shorter_and_smaller(self, name):
        benchmark = get_benchmark(name)
        reference = benchmark.input_sets["reference"]
        for set_name, spec in benchmark.input_sets.items():
            if set_name == "reference":
                continue
            assert spec.length_m < reference.length_m
            assert spec.footprint_scale < reference.footprint_scale

    def test_table2_availability(self):
        # Spot-check the N/A pattern encoded from Table 2.
        assert "medium" not in get_benchmark("mcf").input_sets
        assert "small" not in get_benchmark("art").input_sets
        assert "small" not in get_benchmark("equake").input_sets
        assert "test" not in get_benchmark("perlbmk").input_sets
        assert len(available_input_sets("gzip")) == 6
        assert len(available_input_sets("vortex")) == 6


class TestWorkloadConstruction:
    def test_get_workload(self):
        workload = get_workload("gzip", "test")
        assert workload.benchmark == "gzip"
        assert workload.input_set.name == "test"

    def test_missing_input_set(self):
        with pytest.raises(KeyError, match="no input set"):
            get_workload("art", "small")

    def test_trace_generation_small_scale(self):
        scale = Scale(2)
        trace = get_workload("gzip", "test").trace(scale)
        assert len(trace) == scale.instructions(
            get_benchmark("gzip").input_sets["test"].length_m
        )


class TestBenchmarkPersonalities:
    """Structural checks of the per-benchmark descriptions."""

    def test_gcc_has_many_phases(self):
        assert len(get_benchmark("gcc").program.phases) >= 6

    def test_art_is_homogeneous(self):
        assert len(get_benchmark("art").program.phases) <= 2

    def test_gcc_reference_schedule_interleaved(self):
        fractions = get_benchmark("gcc").input_sets["reference"].phase_fractions
        assert len(fractions) >= 20  # many short segments

    def test_mcf_footprint_largest(self):
        def max_footprint(name):
            return int(get_benchmark(name).program.flat_mem_footprint.max())

        assert max_footprint("mcf") > max_footprint("gzip")
        assert max_footprint("mcf") > max_footprint("art")

    def test_reduced_inputs_skew_schedules(self):
        # gcc's small input only runs early compilation phases.
        benchmark = get_benchmark("gcc")
        small_phases = {name for name, _ in benchmark.input_sets["small"].phase_fractions}
        reference_phases = {
            name for name, _ in benchmark.input_sets["reference"].phase_fractions
        }
        assert small_phases < reference_phases

    def test_programs_deterministic(self):
        a = get_benchmark("gzip").program
        get_benchmark.cache_clear()
        b = get_benchmark("gzip").program
        assert a.num_blocks == b.num_blocks
        assert np.array_equal(a.flat_op, b.flat_op)
        assert np.array_equal(a.flat_pc, b.flat_pc)
