"""Unit tests for the flag > environment > default settings resolver.

One test per precedence rule, plus the error contract for malformed
environment values and the ``REPRO_BATCH_CONFIGS`` helper built on top.
"""

import pytest

from repro.settings import (
    BATCH_CONFIGS_ENV_VAR,
    default_batch_configs,
    resolve,
)

ENV_VAR = "REPRO_TEST_SETTING"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(BATCH_CONFIGS_ENV_VAR, raising=False)


class TestResolve:
    def test_flag_wins_over_env_and_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "7")
        assert resolve(3, ENV_VAR, 9, int) == 3

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "7")
        assert resolve(None, ENV_VAR, 9, int) == 7

    def test_default_when_flag_and_env_absent(self):
        assert resolve(None, ENV_VAR, 9, int) == 9

    def test_empty_env_value_falls_through_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert resolve(None, ENV_VAR, 9, int) == 9

    def test_callable_default_evaluated_lazily(self, monkeypatch):
        calls = []

        def expensive_default():
            calls.append(1)
            return 42

        monkeypatch.setenv(ENV_VAR, "7")
        assert resolve(None, ENV_VAR, expensive_default, int) == 7
        assert calls == []  # env hit: the default was never computed
        assert resolve(None, "REPRO_TEST_UNSET", expensive_default, int) == 42
        assert calls == [1]

    def test_falsy_flag_still_wins(self, monkeypatch):
        # Only None means "no flag given"; 0 is a real value.
        monkeypatch.setenv(ENV_VAR, "7")
        assert resolve(0, ENV_VAR, 9, int) == 0

    def test_malformed_env_error_names_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "many")
        with pytest.raises(ValueError) as excinfo:
            resolve(None, ENV_VAR, 9, int, description="an integer")
        assert str(excinfo.value) == (
            f"${ENV_VAR} must be an integer, got 'many'"
        )


class TestDefaultBatchConfigs:
    def test_defaults_to_one(self):
        assert default_batch_configs() == 1

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_CONFIGS_ENV_VAR, "16")
        assert default_batch_configs() == 16

    def test_rejects_widths_below_one(self, monkeypatch):
        monkeypatch.setenv(BATCH_CONFIGS_ENV_VAR, "0")
        with pytest.raises(ValueError, match="must be >= 1"):
            default_batch_configs()

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(BATCH_CONFIGS_ENV_VAR, "lots")
        with pytest.raises(ValueError, match="must be an integer"):
            default_batch_configs()
