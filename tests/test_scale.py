"""Tests for the paper-unit scale model."""

import os

import pytest

from repro.scale import (
    PROFILE_ENV_VAR,
    PROFILES,
    Scale,
    default_scale,
    scale_from_profile,
)


class TestScale:
    def test_instructions_round_trip(self):
        scale = Scale(100)
        assert scale.instructions(1) == 100
        assert scale.paper_m(100) == 1.0

    def test_fractional_paper_m(self):
        scale = Scale(25)
        assert scale.instructions(0.5) == 12  # rounds

    def test_large_values(self):
        scale = Scale(500)
        assert scale.instructions(8000) == 4_000_000

    def test_zero_instructions(self):
        assert Scale(25).instructions(0) == 0

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            Scale(0)
        with pytest.raises(ValueError):
            Scale(-5)

    def test_profile_names(self):
        for name, value in PROFILES.items():
            assert Scale(value).name == name
        assert Scale(123456).name == "custom"

    def test_frozen(self):
        scale = Scale(25)
        with pytest.raises(AttributeError):
            scale.instructions_per_m = 50


class TestProfiles:
    def test_known_profiles(self):
        assert scale_from_profile("tiny").instructions_per_m == PROFILES["tiny"]
        assert scale_from_profile("full").instructions_per_m == PROFILES["full"]

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown profile"):
            scale_from_profile("gigantic")

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "quick")
        assert default_scale().instructions_per_m == PROFILES["quick"]
        monkeypatch.delenv(PROFILE_ENV_VAR)
        assert default_scale().instructions_per_m == PROFILES["tiny"]

    def test_profiles_ordered(self):
        assert PROFILES["tiny"] < PROFILES["quick"] < PROFILES["full"]
