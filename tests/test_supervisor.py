"""Executor failure matrix: every supervised failure path, injected
deterministically via the fault harness and asserted on callbacks and
metrics.

Covers: worker exception, worker SIGKILL (broken pool), hang until the
watchdog reaps it, pool broken mid-submission (never-submitted tasks
are not charged retries), retry exhaustion, poison-run quarantine,
backend degradation, and deterministic backoff jitter.  Each scenario
checks that terminal callbacks fire exactly once per slot and that the
accounting identity ``runs_launched == runs_succeeded + failures +
quarantined`` holds.
"""

import os
import time
from collections import Counter

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.engine import Engine, EngineRunError, RunRequest
from repro.engine.executor import Executor, RunError, RunTask
from repro.engine.faults import FAULT_PLAN_ENV_VAR
from repro.techniques.base import SimulationTechnique
from repro.workloads.spec import get_workload

from tests.test_engine import SCALE, StubTechnique

pytestmark = pytest.mark.usefixtures("clean_fault_plan")


@pytest.fixture()
def clean_fault_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV_VAR, raising=False)


@pytest.fixture()
def workload():
    return get_workload("gzip")


def _requests(workload, n=4):
    return [
        RunRequest(StubTechnique(f"t{i}"), workload, ARCH_CONFIGS[0])
        for i in range(n)
    ]


def _engine(jobs=2, **kwargs):
    kwargs.setdefault("backoff_base", 0.01)
    return Engine(scale=SCALE, jobs=jobs, **kwargs)


def _check_accounting(metrics):
    assert metrics.runs_launched == (
        metrics.runs_succeeded + metrics.failures + metrics.quarantined
    )


class VaryingFailureTechnique(SimulationTechnique):
    """Fails every attempt with a *different* message (so the poison
    detector never quarantines it and the retry budget is what ends
    it).  Attempts are counted in a file so pool workers share it."""

    family = "Stub"

    def __init__(self, counter_path):
        self.counter_path = str(counter_path)

    @property
    def permutation(self):
        return "varying"

    def run(self, workload, config, scale, enhancements=None):
        count = 0
        if os.path.exists(self.counter_path):
            with open(self.counter_path) as handle:
                count = int(handle.read() or 0)
        count += 1
        with open(self.counter_path, "w") as handle:
            handle.write(str(count))
        raise RuntimeError(f"failure number {count}")


class SleepingTechnique(SimulationTechnique):
    """Healthy but slow: succeeds after sleeping a fixed time."""

    family = "Stub"

    def __init__(self, tag, seconds):
        self.tag = tag
        self.seconds = seconds

    @property
    def permutation(self):
        return self.tag

    def run(self, workload, config, scale, enhancements=None):
        time.sleep(self.seconds)
        from tests.test_engine import _stub_result

        return _stub_result(workload, config, self.tag)


class CallbackRecorder:
    """Counts terminal callbacks per slot for exactly-once assertions."""

    def __init__(self):
        self.successes = Counter()
        self.failures = Counter()
        self.retries = []
        self.degrades = []
        self.errors = {}

    def on_success(self, slot, result, wall, info):
        self.successes[slot] += 1

    def on_failure(self, slot, request, error):
        self.failures[slot] += 1
        self.errors[slot] = error

    def on_retry(self, slot, exc):
        self.retries.append(slot)

    def on_degrade(self, slot, frm, to):
        self.degrades.append((slot, frm, to))

    def assert_exactly_once(self, slots):
        terminal = self.successes + self.failures
        assert set(terminal) == set(slots)
        assert all(count == 1 for count in terminal.values()), terminal


class TestFailureMatrix:
    """One scenario per row of the executor failure matrix."""

    def test_worker_exception_retried_then_recovers(self, monkeypatch, workload):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@1")
        engine = _engine(jobs=2)
        results = engine.run_many(_requests(workload))
        assert [r.permutation for r in results] == ["t0", "t1", "t2", "t3"]
        assert engine.metrics.retries == 1
        assert engine.metrics.failures == 0
        _check_accounting(engine.metrics)

    def test_worker_sigkill_breaks_pool_and_recovers(self, monkeypatch, workload):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kill@0")
        engine = _engine(jobs=2)
        results = engine.run_many(_requests(workload))
        assert [r.permutation for r in results] == ["t0", "t1", "t2", "t3"]
        assert engine.metrics.crashes >= 1  # at least the killed worker
        assert engine.metrics.failures == 0
        assert engine.metrics.runs_succeeded == 4
        _check_accounting(engine.metrics)

    def test_hang_is_reaped_within_timeout(self, monkeypatch, workload):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "hang@2:60")
        started = time.monotonic()
        engine = _engine(jobs=2, run_timeout=1.5)
        results = engine.run_many(_requests(workload))
        elapsed = time.monotonic() - started
        assert [r.permutation for r in results] == ["t0", "t1", "t2", "t3"]
        assert elapsed < 30  # nowhere near the 60s hang
        assert engine.metrics.timeouts == 1
        assert engine.metrics.runs_succeeded == 4
        _check_accounting(engine.metrics)

    def test_queue_wait_does_not_count_against_timeout(self, workload):
        # Six healthy 0.5s runs on 2 workers with a 1s timeout: each
        # run individually finishes well inside its budget, but the
        # last runs spend ~1s queued behind siblings.  The watchdog
        # must measure from each run's actual start, not submission,
        # so nothing may be reaped.
        requests = [
            RunRequest(SleepingTechnique(f"s{i}", 0.5), workload, ARCH_CONFIGS[0])
            for i in range(6)
        ]
        engine = _engine(jobs=2, run_timeout=1.0)
        results = engine.run_many(requests)
        assert [r.permutation for r in results] == [f"s{i}" for i in range(6)]
        assert engine.metrics.timeouts == 0
        assert engine.metrics.retries == 0
        assert engine.metrics.failures == 0
        assert engine.metrics.runs_succeeded == 6
        _check_accounting(engine.metrics)

    def test_persistent_hang_is_quarantined(self, monkeypatch, workload):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "hang@1:60x*")
        engine = _engine(jobs=2, run_timeout=1.0, retries=5)
        with pytest.raises(EngineRunError):
            engine.run_many(_requests(workload))
        error = engine.metrics.failed_runs[0]
        assert error["kind"] == "timeout"
        assert error["quarantined"] is True
        assert error["attempts"] == 2  # identical timeout twice, then stop
        assert engine.metrics.timeouts == 2
        assert engine.metrics.quarantined == 1
        assert engine.metrics.runs_succeeded == 3
        _check_accounting(engine.metrics)

    def test_pool_broken_mid_submission_never_ran_not_charged(
        self, monkeypatch, workload
    ):
        # Many more tasks than the submission backlog (workers * 4), so
        # a broken pool strands most of the queue unsubmitted.  Those
        # never-ran tasks must be requeued without a retry charge.
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kill@0")
        engine = _engine(jobs=2)
        count = 40
        results = engine.run_many(_requests(workload, n=count))
        assert len(results) == count
        assert engine.metrics.runs_succeeded == count
        assert engine.metrics.failures == 0
        # Only tasks actually in flight when the pool broke may be
        # charged (the backlog bound is workers * 4 = 8), never the
        # whole queue.
        assert 1 <= engine.metrics.retries <= 8
        _check_accounting(engine.metrics)

    def test_pool_breakage_charges_only_started_runs(self, monkeypatch, workload):
        # 12 tasks on 2 workers: at most 2 runs can have started when
        # the pool breaks, so at most 2 crash charges -- every other
        # in-flight future was still queued inside the pool and must be
        # requeued without a crash charge (and certainly never
        # quarantined).
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kill@0")
        engine = _engine(jobs=2)
        results = engine.run_many(_requests(workload, n=12))
        assert len(results) == 12
        assert engine.metrics.runs_succeeded == 12
        assert engine.metrics.failures == 0
        assert engine.metrics.quarantined == 0
        assert 1 <= engine.metrics.crashes <= 2
        assert engine.metrics.retries == engine.metrics.crashes
        _check_accounting(engine.metrics)

    def test_retry_exhaustion_reports_transient(self, tmp_path, workload):
        engine = _engine(jobs=1, retries=2)
        broken = VaryingFailureTechnique(tmp_path / "count")
        requests = [RunRequest(broken, workload, ARCH_CONFIGS[0])]
        with pytest.raises(EngineRunError):
            engine.run_many(requests)
        error = engine.metrics.failed_runs[0]
        assert error["kind"] == "transient"  # every failure looked different
        assert error["quarantined"] is False
        assert error["attempts"] == 3  # first attempt + 2 retries
        assert engine.metrics.retries == 2
        assert engine.metrics.failures == 1
        _check_accounting(engine.metrics)

    def test_identical_failure_twice_quarantines_early(
        self, monkeypatch, workload
    ):
        # Budget would allow 5 retries, but the identical signature
        # stops the bleeding after two attempts.
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@0x*")
        engine = _engine(jobs=1, retries=5)
        with pytest.raises(EngineRunError) as excinfo:
            engine.run_many(_requests(workload, n=1))
        (error,) = excinfo.value.errors.values()
        assert isinstance(error, RunError)
        assert error.kind == "deterministic"
        assert error.quarantined
        assert error.attempts == 2
        assert engine.metrics.retries == 1
        assert engine.metrics.quarantined == 1
        assert engine.metrics.failures == 0
        _check_accounting(engine.metrics)


class TestExecutorCallbacks:
    """Exactly-once terminal callback dispatch, straight at the executor."""

    def _tasks(self, workload, n):
        return [
            RunTask(
                slot=i,
                request=RunRequest(StubTechnique(f"t{i}"), workload, ARCH_CONFIGS[0]),
                key=f"key{i}",
            )
            for i in range(n)
        ]

    def _run(self, executor, tasks):
        recorder = CallbackRecorder()
        executor.run(
            tasks, SCALE,
            recorder.on_success, recorder.on_failure,
            recorder.on_retry, recorder.on_degrade,
        )
        return recorder

    def test_all_success_parallel(self, workload):
        tasks = self._tasks(workload, 6)
        recorder = self._run(Executor(jobs=2, backoff_base=0.0), tasks)
        recorder.assert_exactly_once(range(6))
        assert not recorder.failures

    def test_exception_and_kill_mix(self, monkeypatch, workload):
        # Slot 1 fails on every attempt while slot 3 SIGKILLs its
        # worker once: the pool crash may interleave with slot 1's
        # retries, but terminal callbacks still fire exactly once and
        # only slot 1 ends in failure.
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@1x*,kill@3")
        tasks = self._tasks(workload, 6)
        recorder = self._run(
            Executor(jobs=2, retries=1, backoff_base=0.0), tasks
        )
        recorder.assert_exactly_once(range(6))
        assert set(recorder.failures) == {1}
        assert recorder.successes[3] == 1  # recovered after the crash

    def test_hang_timeout_callbacks(self, monkeypatch, workload):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "hang@0:60x*")
        tasks = self._tasks(workload, 3)
        recorder = self._run(
            Executor(jobs=2, retries=3, timeout=1.0, backoff_base=0.0), tasks
        )
        recorder.assert_exactly_once(range(3))
        assert set(recorder.failures) == {0}
        assert recorder.errors[0].kind == "timeout"
        assert recorder.errors[0].quarantined

    def test_zero_retries_fail_fast(self, monkeypatch, workload):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "exc@0")
        tasks = self._tasks(workload, 2)
        recorder = self._run(Executor(jobs=1, retries=0), tasks)
        recorder.assert_exactly_once(range(2))
        assert set(recorder.failures) == {0}
        assert not recorder.retries
        assert recorder.errors[0].kind == "transient"
        assert recorder.errors[0].attempts == 1


class TestCrashQuarantineExemption:
    """A pool breakage cannot be attributed to one run with certainty,
    so identical crash signatures must never trigger the poison-run
    quarantine -- only the retry budget ends a repeat worker-killer."""

    def test_identical_crash_signatures_do_not_quarantine(self, workload):
        from concurrent.futures.process import BrokenProcessPool

        executor = Executor(jobs=2, retries=3, backoff_base=0.0)
        recorder = CallbackRecorder()
        task = RunTask(
            slot=0,
            request=RunRequest(StubTechnique("t0"), workload, ARCH_CONFIGS[0]),
            key="k0",
        )
        supervision = {}
        for _ in range(3):  # three identical crashes: all within budget
            action = executor._after_failure(
                task, BrokenProcessPool("pool died"), supervision,
                recorder.on_failure, recorder.on_retry, recorder.on_degrade,
            )
            assert action[0] == "requeue"
        action = executor._after_failure(  # fourth exceeds retries=3
            task, BrokenProcessPool("pool died"), supervision,
            recorder.on_failure, recorder.on_retry, recorder.on_degrade,
        )
        assert action[0] == "done"
        assert recorder.failures[0] == 1
        error = recorder.errors[0]
        assert error.kind == "crash"
        assert error.quarantined is False
        assert error.attempts == 4


class TestBackoff:
    def test_backoff_deterministic_per_key(self):
        executor = Executor(jobs=1, backoff_base=0.1, backoff_cap=5.0)
        assert executor._backoff_delay("k1", 1) == executor._backoff_delay("k1", 1)
        assert executor._backoff_delay("k1", 1) != executor._backoff_delay("k2", 1)

    def test_backoff_grows_and_caps(self):
        executor = Executor(jobs=1, backoff_base=0.1, backoff_cap=0.4)
        delays = [executor._backoff_delay("key", a) for a in range(1, 8)]
        # Exponential envelope: raw doubles until the cap.
        assert all(0 < d <= 0.4 for d in delays)
        assert max(delays) <= 0.4
        assert delays[0] <= 0.1  # first retry within base

    def test_backoff_disabled(self):
        executor = Executor(jobs=1, backoff_base=0.0)
        assert executor._backoff_delay("key", 3) == 0.0


class TestDegradation:
    def test_kernel_fault_degrades_and_matches_reference(
        self, monkeypatch, workload
    ):
        from repro.techniques.truncated import RunZ

        requests = [
            RunRequest(RunZ(200 + 100 * i), workload, ARCH_CONFIGS[0])
            for i in range(3)
        ]
        reference = _engine(jobs=1).run_many(requests)

        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kernel@1:numpy")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        engine = _engine(jobs=2)
        degraded = engine.run_many(requests)
        assert engine.metrics.degradations == 1
        assert engine.metrics.degraded_runs[0]["from"] == "numpy"
        assert engine.metrics.degraded_runs[0]["to"] == "python"
        # Degradation consumed no retry budget and failed nothing.
        assert engine.metrics.retries == 0
        assert engine.metrics.failures == 0
        for a, b in zip(reference, degraded):
            assert a.stats.counters() == b.stats.counters()
        _check_accounting(engine.metrics)

    def test_kernel_fault_on_every_tier_exhausts_to_failure(
        self, monkeypatch, workload
    ):
        from repro.techniques.truncated import RunZ

        # Kernel faults planned for both the numpy and python tiers:
        # numpy degrades to python, and because the python reference
        # has no kernel guard (nothing below it to degrade to), the
        # python-tier fault never fires and the run completes there.
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kernel@0:numpy,kernel@0:python")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        engine = _engine(jobs=1)
        results = engine.run_many(
            [RunRequest(RunZ(300), workload, ARCH_CONFIGS[0])]
        )
        # python tier has no kernel guard, so the run completes there.
        assert results[0] is not None
        assert engine.metrics.degradations == 1
        _check_accounting(engine.metrics)

    def test_degradation_in_stats_json(self, monkeypatch, tmp_path, workload):
        import json

        from repro.techniques.truncated import RunZ

        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "kernel@0:numpy")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        engine = _engine(jobs=1, cache_dir=tmp_path)
        engine.run_many([RunRequest(RunZ(300), workload, ARCH_CONFIGS[0])])
        path = engine.write_stats()
        document = json.loads(path.read_text())
        assert document["degradations"] == 1
        assert document["degraded_runs"][0]["from"] == "numpy"
        assert document["degraded_runs"][0]["to"] == "python"


class TestRunTimeoutSerialCaveat:
    def test_timeout_requires_positive(self):
        with pytest.raises(ValueError):
            Executor(jobs=2, timeout=0)

    def test_serial_single_task_skips_pool_without_timeout(self, workload):
        # jobs > 1 with one task and no timeout stays in-process (no
        # pool spin-up); with a timeout, the pool path must be used so
        # the watchdog can actually kill a hang.
        executor = Executor(jobs=2, timeout=None)
        recorder = CallbackRecorder()
        task = RunTask(
            slot=0,
            request=RunRequest(StubTechnique(), workload, ARCH_CONFIGS[0]),
            key="k",
        )
        executor.run(
            [task], SCALE,
            recorder.on_success, recorder.on_failure,
            recorder.on_retry, recorder.on_degrade,
        )
        recorder.assert_exactly_once([0])
