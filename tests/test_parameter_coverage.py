"""Every Plackett-Burman parameter must be plumbed into the model.

The PB characterization is meaningless for parameters the timing model
ignores.  This module flips each of the 43 factors between its low and
high value on a fixed workload and requires a CPI response from the
overwhelming majority (a handful may be below measurement resolution on
a small trace, e.g. RAS size on a call-light workload).
"""

import pytest

from repro.cpu.config import PB_PARAMETERS, ProcessorConfig
from repro.cpu.simulator import Simulator
from repro.scale import Scale
from repro.workloads.spec import get_workload

#: Parameters allowed to show no effect on this workload at this scale.
#: The genuinely silent ones are defensible: FP resources on an integer
#: benchmark, BTB capacity below the static branch count, and cache
#: geometry whose effects only emerge past cold-start at larger scales.
_ALLOWED_SILENT = 10


@pytest.fixture(scope="module")
def trace():
    # vortex: code-heavy, call-heavy -- the widest parameter coverage.
    return get_workload("vortex").trace(Scale(4))


@pytest.fixture(scope="module")
def per_parameter_effects(trace):
    base = ProcessorConfig()
    effects = {}
    for parameter in PB_PARAMETERS:
        low = Simulator(base.replace(**{parameter.name: parameter.low}))
        high = Simulator(base.replace(**{parameter.name: parameter.high}))
        cpi_low = low.run_reference(trace).stats.cpi
        cpi_high = high.run_reference(trace).stats.cpi
        effects[parameter.name] = cpi_high - cpi_low
    return effects


def test_most_parameters_have_effect(per_parameter_effects):
    silent = [name for name, delta in per_parameter_effects.items() if delta == 0]
    assert len(silent) <= _ALLOWED_SILENT, f"silent parameters: {silent}"


@pytest.mark.parametrize(
    "name,expected_sign",
    [
        ("mem_latency_first", +1),
        ("mem_latency_next", +1),
        ("mispredict_penalty", +1),
        ("int_div_lat", +1),
        ("fp_mult_lat", +1),
        ("tlb_miss_latency", +1),
        ("rob_entries", -1),
        ("lsq_entries", -1),
        ("int_alus", -1),
        ("mem_ports", -1),
        ("issue_width", -1),
        ("dtlb_entries", -1),
    ],
)
def test_first_order_signs(per_parameter_effects, name, expected_sign):
    """Latency-like parameters hurt when raised; capacity-like help."""
    delta = per_parameter_effects[name]
    assert delta * expected_sign > 0, f"{name}: delta={delta}"


def test_memory_latency_is_large_effect(per_parameter_effects):
    magnitudes = {n: abs(d) for n, d in per_parameter_effects.items()}
    ordering = sorted(magnitudes, key=magnitudes.get, reverse=True)
    assert "mem_latency_first" in ordering[:5]
