"""Tests for functional warming and the simulator facade."""

import pytest

from repro.cpu.config import ProcessorConfig
from repro.cpu.functional import run_functional_warming
from repro.cpu.machine import Machine
from repro.cpu.simulator import SimulationResult, Simulator
from repro.cpu.stats import SimulationStats

from tests.conftest import TEST_SCALE, make_micro_workload


@pytest.fixture(scope="module")
def trace():
    return make_micro_workload(length_m=600, seed=17).trace(TEST_SCALE)


class TestFunctionalWarming:
    def test_returns_instruction_count(self, trace):
        machine = Machine(ProcessorConfig())
        assert run_functional_warming(machine, trace, 0, 1000).instructions == 1000

    def test_warms_caches(self, trace):
        machine = Machine(ProcessorConfig())
        run_functional_warming(machine, trace, 0, len(trace))
        # Find a load address and confirm residency.
        warmed = any(
            machine.dl1.contains(int(addr))
            for addr in trace.addr[-200:]
            if addr
        )
        assert warmed

    def test_out_of_range_rejected(self, trace):
        machine = Machine(ProcessorConfig())
        with pytest.raises(ValueError):
            run_functional_warming(machine, trace, 0, len(trace) + 1)

    def test_warming_reduces_subsequent_cpi(self, trace):
        config = ProcessorConfig()
        simulator = Simulator(config)
        cold = simulator.run_region(trace, 2000, 3000).stats

        machine = simulator.new_machine()
        simulator.warm(machine, trace, 0, 2000)
        warm = simulator.detail(machine, trace, 2000, 3000)
        assert warm.cpi < cold.cpi

    def test_warming_close_to_detailed_warmup(self, trace):
        """Functional warming approximates detailed warm-up's effect on
        the measured region (same caches/predictors are trained)."""
        config = ProcessorConfig()
        simulator = Simulator(config)

        machine = simulator.new_machine()
        simulator.warm(machine, trace, 0, 2000)
        functional = simulator.detail(machine, trace, 2000, 3000)

        detailed = simulator.run_region(
            trace, 2000, 3000, warmup_instructions=2000
        ).stats
        assert functional.cpi == pytest.approx(detailed.cpi, rel=0.10)


class TestSimulatorFacade:
    def test_run_reference_covers_whole_trace(self, trace):
        result = Simulator().run_reference(trace)
        assert result.detailed_instructions == len(trace)
        assert result.stats.instructions == len(trace)

    def test_result_work_profile(self, trace):
        result = Simulator().run_region(trace, 500, 1500)
        assert result.detailed_instructions == 1000
        assert result.fastforwarded_instructions == 500
        assert result.extra_detailed_instructions == 0

    def test_add_work(self, trace):
        a = Simulator().run_region(trace, 0, 100)
        b = Simulator().run_region(trace, 100, 300)
        a.add_work(b)
        assert a.detailed_instructions == 300

    def test_cpi_ipc_inverse(self, trace):
        result = Simulator().run_region(trace, 0, 1000)
        assert result.cpi * result.ipc == pytest.approx(1.0)


class TestStatsContainer:
    def test_empty_rates(self):
        stats = SimulationStats()
        assert stats.cpi == 0.0
        assert stats.branch_accuracy == 1.0
        assert stats.dl1_hit_rate == 1.0

    def test_as_dict_roundtrip(self, trace):
        stats = Simulator().run_reference(trace).stats
        d = stats.as_dict()
        assert d["instructions"] == len(trace)
        assert d["cpi"] == pytest.approx(stats.cpi)
        assert 0 <= d["branch_accuracy"] <= 1
