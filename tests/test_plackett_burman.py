"""Tests for the Plackett-Burman design construction and analysis."""

import numpy as np
import pytest

from repro.characterization.plackett_burman import (
    PlackettBurmanDesign,
    max_rank_distance,
    paley_hadamard,
)
from repro.cpu.config import PB_PARAMETERS


class TestPaleyHadamard:
    @pytest.mark.parametrize("q", [3, 7, 11, 19, 23, 43])
    def test_orthogonality(self, q):
        h = paley_hadamard(q)
        n = q + 1
        assert h.shape == (n, n)
        assert np.array_equal(h @ h.T, n * np.eye(n, dtype=np.int64))

    def test_entries_pm1(self):
        h = paley_hadamard(43)
        assert set(np.unique(h)) == {-1, 1}

    def test_first_row_and_column_ones(self):
        h = paley_hadamard(43)
        assert (h[0] == 1).all()
        assert (h[:, 0] == 1).all()

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            paley_hadamard(5)  # 5 % 4 == 1
        with pytest.raises(ValueError):
            paley_hadamard(15)  # composite (and 15 % 4 == 3)


class TestMaxRankDistance:
    def test_n2(self):
        # <1,2> vs <2,1>: sqrt(2).
        assert max_rank_distance(2) == pytest.approx(np.sqrt(2))

    def test_43_parameters(self):
        # sqrt(sum (44 - 2i)^2) for i in 1..43.
        expected = np.sqrt(sum((44 - 2 * i) ** 2 for i in range(1, 44)))
        assert max_rank_distance(43) == pytest.approx(expected)


class TestDesign:
    def test_dimensions(self):
        design = PlackettBurmanDesign()
        assert design.num_runs == 44
        assert design.num_parameters == 43

    def test_foldover_doubles_runs(self):
        design = PlackettBurmanDesign(foldover=True)
        assert design.num_runs == 88
        # The second half is the mirrored first half.
        assert np.array_equal(design.matrix[44:], -design.matrix[:44])

    def test_columns_balanced(self):
        design = PlackettBurmanDesign()
        sums = design.matrix.sum(axis=0)
        # Each factor appears at high/low equally often up to the
        # Hadamard border row.
        assert (np.abs(sums) <= 2).all()

    def test_configs_reflect_levels(self):
        design = PlackettBurmanDesign()
        configs = design.configs()
        assert len(configs) == 44
        for row, config in zip(design.matrix, configs):
            for parameter, level in zip(PB_PARAMETERS, row):
                expected = parameter.high if level == 1 else parameter.low
                assert getattr(config, parameter.name) == expected

    def test_effect_recovery_single_factor(self):
        """A response driven by one factor yields that factor's effect."""
        design = PlackettBurmanDesign()
        target = 7
        y = 10.0 + 3.0 * design.matrix[:, target]
        effects = design.effects(y)
        assert effects[target] == pytest.approx(6.0)  # high-low difference
        others = np.delete(effects, target)
        assert np.abs(others).max() < 1e-9  # orthogonality

    def test_effect_recovery_multiple_factors(self):
        design = PlackettBurmanDesign()
        y = (
            2.0 * design.matrix[:, 0]
            - 5.0 * design.matrix[:, 10]
            + 1.0 * design.matrix[:, 42]
        )
        ranks = design.ranks(y)
        assert ranks[10] == 1
        assert ranks[0] == 2
        assert ranks[42] == 3

    def test_foldover_effects_match_plain_for_linear_response(self):
        plain = PlackettBurmanDesign()
        folded = PlackettBurmanDesign(foldover=True)
        beta = np.linspace(-2, 2, 43)
        y_plain = plain.matrix @ beta
        y_folded = folded.matrix @ beta
        assert np.allclose(plain.effects(y_plain), folded.effects(y_folded))

    def test_response_length_checked(self):
        design = PlackettBurmanDesign()
        with pytest.raises(ValueError):
            design.effects([1.0] * 43)
