"""Integration tests: the paper's headline findings at micro scale.

These exercise the full stack (workloads -> simulator -> techniques ->
characterizations) and assert the *shape* results the reproduction must
preserve.  They use a reduced scale so the whole module stays fast.
"""

import pytest

from repro.cpu.config import ARCH_CONFIGS, NLP
from repro.scale import Scale
from repro.techniques import (
    FFRunZ,
    ReducedInputTechnique,
    ReferenceTechnique,
    RunZ,
    SimPointTechnique,
    SmartsTechnique,
)
from repro.workloads.spec import get_workload

SCALE = Scale(25)
CONFIG = ARCH_CONFIGS[1]


@pytest.fixture(scope="module")
def gcc_reference():
    return ReferenceTechnique().run(get_workload("gcc"), CONFIG, SCALE)


@pytest.fixture(scope="module")
def mcf_reference():
    return ReferenceTechnique().run(get_workload("mcf"), CONFIG, SCALE)


def relative_error(result, reference):
    return abs(result.cpi - reference.cpi) / reference.cpi


class TestSamplingIsAccurate:
    def test_smarts_within_five_percent_gcc(self, gcc_reference):
        result = SmartsTechnique(10000, 20000).run(
            get_workload("gcc"), CONFIG, SCALE
        )
        assert relative_error(result, gcc_reference) < 0.05

    def test_smarts_within_five_percent_mcf(self, mcf_reference):
        result = SmartsTechnique(10000, 20000).run(
            get_workload("mcf"), CONFIG, SCALE
        )
        assert relative_error(result, mcf_reference) < 0.05

    def test_simpoint_within_ten_percent_gcc(self, gcc_reference):
        result = SimPointTechnique(10, 100, warmup_m=1).run(
            get_workload("gcc"), CONFIG, SCALE
        )
        assert relative_error(result, gcc_reference) < 0.10


class TestTruncationIsWorse:
    def test_run_z_worse_than_smarts_on_gcc(self, gcc_reference):
        workload = get_workload("gcc")
        truncated = RunZ(500).run(workload, CONFIG, SCALE)
        smarts = SmartsTechnique(10000, 20000).run(workload, CONFIG, SCALE)
        assert relative_error(truncated, gcc_reference) > relative_error(
            smarts, gcc_reference
        )

    def test_gcc_truncation_error_substantial(self, gcc_reference):
        truncated = RunZ(500).run(get_workload("gcc"), CONFIG, SCALE)
        assert relative_error(truncated, gcc_reference) > 0.03


class TestReducedInputsDiffer:
    def test_mcf_reduced_underestimates_memory_pressure(self):
        """The paper's mcf finding: cycles from main-memory misses are a
        far smaller share for reduced inputs than for reference.

        Uses the quick scale: at tiny scale the short reduced trace is
        dominated by compulsory (cold) misses, masking the capacity
        effect the finding is about.
        """
        scale = Scale(100)
        workload = get_workload("mcf")
        reference = ReferenceTechnique().run(workload, CONFIG, scale)
        reduced = ReducedInputTechnique("test").run(workload, CONFIG, scale)
        ref_mem_rate = reference.stats.l2_misses / reference.stats.instructions
        red_mem_rate = reduced.stats.l2_misses / reduced.stats.instructions
        assert red_mem_rate < ref_mem_rate * 0.75

    def test_mcf_reduced_cpi_error_large(self, mcf_reference):
        reduced = ReducedInputTechnique("test").run(
            get_workload("mcf"), CONFIG, SCALE
        )
        assert relative_error(reduced, mcf_reference) > 0.10


class TestExecutionProfiles:
    def test_truncation_skews_profile_more_than_sampling(self, gcc_reference):
        from repro.characterization.profile import compare_profiles

        workload = get_workload("gcc")
        ref_profile = gcc_reference.block_profile(SCALE)

        truncated = RunZ(500).run(workload, CONFIG, SCALE)
        smarts = SmartsTechnique(1000, 2000).run(workload, CONFIG, SCALE)

        chi_truncated = compare_profiles(
            truncated.block_profile(SCALE), ref_profile
        )
        chi_smarts = compare_profiles(smarts.block_profile(SCALE), ref_profile)
        assert chi_smarts.normalized < chi_truncated.normalized


class TestEnhancementStudy:
    def test_nlp_speedup_positive_for_reference(self):
        workload = get_workload("gzip")
        base = ReferenceTechnique().run(workload, CONFIG, SCALE)
        enhanced = ReferenceTechnique().run(
            workload, CONFIG, SCALE, enhancements=NLP
        )
        assert enhanced.cpi < base.cpi

    def test_ff_technique_distorts_speedup(self):
        """A truncated technique reports a different NLP speedup than
        the reference -- the Figure 6 effect."""
        workload = get_workload("gcc")
        technique = FFRunZ(2000, 500)

        ref_base = ReferenceTechnique().run(workload, CONFIG, SCALE)
        ref_enh = ReferenceTechnique().run(workload, CONFIG, SCALE, enhancements=NLP)
        t_base = technique.run(workload, CONFIG, SCALE)
        t_enh = technique.run(workload, CONFIG, SCALE, enhancements=NLP)

        ref_speedup = ref_base.cpi / ref_enh.cpi - 1
        technique_speedup = t_base.cpi / t_enh.cpi - 1
        assert technique_speedup != pytest.approx(ref_speedup, abs=1e-4)
