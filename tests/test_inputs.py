"""Tests for input sets, workloads and trace caching."""

import pytest

from repro.scale import Scale
from repro.workloads.inputs import (
    InputSetSpec,
    Workload,
    clear_trace_cache,
)

from tests.conftest import TEST_SCALE, make_micro_program, make_micro_workload


class TestInputSetSpec:
    def test_valid(self):
        spec = InputSetSpec("test", 100, (("alpha", 1.0),))
        assert spec.footprint_scale == 1.0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            InputSetSpec("huge", 100, (("alpha", 1.0),))

    def test_positive_length(self):
        with pytest.raises(ValueError):
            InputSetSpec("test", 0, (("alpha", 1.0),))

    def test_fractions_required(self):
        with pytest.raises(ValueError):
            InputSetSpec("test", 100, ())

    def test_fraction_sum_positive(self):
        with pytest.raises(ValueError):
            InputSetSpec("test", 100, (("alpha", 0.0),))

    def test_footprint_scale_positive(self):
        with pytest.raises(ValueError):
            InputSetSpec("test", 100, (("alpha", 1.0),), footprint_scale=0)


class TestWorkloadSchedule:
    def test_schedule_total_matches_scale(self):
        workload = make_micro_workload(length_m=400)
        schedule = workload.schedule(TEST_SCALE)
        assert sum(n for _, n in schedule) == TEST_SCALE.instructions(400)

    def test_schedule_respects_fractions(self):
        workload = make_micro_workload(length_m=1000)
        schedule = workload.schedule(TEST_SCALE)
        assert len(schedule) == 2
        first, second = schedule
        assert first[0] == 0 and second[0] == 1
        assert abs(first[1] - second[1]) <= 1

    def test_schedule_resolves_phase_names(self):
        program = make_micro_program()
        spec = InputSetSpec("test", 100, (("beta", 1.0),))
        workload = Workload("micro", program, spec, seed=1)
        schedule = workload.schedule(TEST_SCALE)
        assert schedule[0][0] == program.phase_index("beta")

    def test_name(self):
        workload = make_micro_workload(input_name="train")
        assert workload.name == "micro.train"


class TestTraceCaching:
    def test_same_workload_returns_cached_object(self):
        clear_trace_cache()
        workload = make_micro_workload()
        a = workload.trace(TEST_SCALE)
        b = workload.trace(TEST_SCALE)
        assert a is b

    def test_different_scale_regenerates(self):
        workload = make_micro_workload()
        a = workload.trace(TEST_SCALE)
        b = workload.trace(Scale(7))
        assert a is not b
        assert len(b) != len(a)

    def test_different_seed_distinct_key(self):
        a = make_micro_workload(seed=1).trace(TEST_SCALE)
        b = make_micro_workload(seed=2).trace(TEST_SCALE)
        assert a is not b

    def test_cache_capacity_bounded(self):
        clear_trace_cache()
        workloads = [make_micro_workload(seed=i) for i in range(6)]
        traces = [w.trace(TEST_SCALE) for w in workloads]
        # The first workload's trace was evicted (capacity 4).
        again = workloads[0].trace(TEST_SCALE)
        assert again is not traces[0]

    def test_trace_length_matches_input_length(self):
        workload = make_micro_workload(length_m=200)
        assert len(workload.trace(TEST_SCALE)) == TEST_SCALE.instructions(200)
