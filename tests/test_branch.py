"""Tests for branch predictors, BTB and the return-address stack."""

import pytest

from repro.cpu.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    CombinedPredictor,
    GsharePredictor,
    PerfectPredictor,
    ReturnAddressStack,
    StaticTakenPredictor,
    make_predictor,
)


class TestBimodal:
    def test_learns_biased_branch(self):
        predictor = BimodalPredictor(256)
        pc = 0x400100
        for _ in range(4):
            predictor.predict_update(pc, True)
        assert predictor.predict_update(pc, True)

    def test_initial_weakly_not_taken(self):
        predictor = BimodalPredictor(256)
        # Counter starts at 1 (weakly not-taken): first taken branch
        # mispredicts.
        assert not predictor.predict_update(0x400100, True)

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)

    def test_accuracy_on_biased_stream(self):
        predictor = BimodalPredictor(1024)
        import random
        rng = random.Random(42)
        correct = 0
        trials = 2000
        for _ in range(trials):
            taken = rng.random() < 0.9
            correct += predictor.predict_update(0x400200, taken)
        assert correct / trials > 0.8


class TestGshare:
    def test_learns_alternating_pattern(self):
        predictor = GsharePredictor(1024)
        outcomes = [True, False] * 200
        correct = 0
        for taken in outcomes:
            correct += predictor.predict_update(0x400300, taken)
        # The pattern is perfectly predictable with global history.
        assert correct / len(outcomes) > 0.8

    def test_history_updates(self):
        predictor = GsharePredictor(256)
        predictor.predict_update(0, True)
        assert predictor.history & 1 == 1
        predictor.predict_update(0, False)
        assert predictor.history & 1 == 0


class TestCombined:
    def test_beats_components_on_mixed_stream(self):
        import random
        rng = random.Random(7)
        streams = [(0x100, 0.95), (0x200, 0.05)]
        combined = CombinedPredictor(1024)
        correct = 0
        trials = 3000
        for _ in range(trials):
            pc, bias = streams[rng.randrange(2)]
            taken = rng.random() < bias
            correct += combined.predict_update(pc, taken)
        assert correct / trials > 0.85

    def test_alternating_learned(self):
        combined = CombinedPredictor(1024)
        correct = sum(
            combined.predict_update(0x400, taken)
            for taken in [True, False] * 300
        )
        assert correct / 600 > 0.8


class TestDegeneratePredictors:
    def test_static_taken(self):
        predictor = StaticTakenPredictor()
        assert predictor.predict_update(0, True)
        assert not predictor.predict_update(0, False)

    def test_perfect(self):
        predictor = PerfectPredictor()
        assert predictor.predict_update(0, True)
        assert predictor.predict_update(0, False)

    def test_factory(self):
        assert isinstance(make_predictor("combined", 64), CombinedPredictor)
        assert isinstance(make_predictor("bimodal", 64), BimodalPredictor)
        assert isinstance(make_predictor("gshare", 64), GsharePredictor)
        with pytest.raises(ValueError):
            make_predictor("neural", 64)


class TestBTB:
    def test_first_lookup_misses(self):
        btb = BranchTargetBuffer(64, 4)
        assert not btb.lookup_update(0x400, 0x500)

    def test_repeat_lookup_hits(self):
        btb = BranchTargetBuffer(64, 4)
        btb.lookup_update(0x400, 0x500)
        assert btb.lookup_update(0x400, 0x500)

    def test_target_change_detected(self):
        btb = BranchTargetBuffer(64, 4)
        btb.lookup_update(0x400, 0x500)
        assert not btb.lookup_update(0x400, 0x600)
        assert btb.lookup_update(0x400, 0x600)  # retrained

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(4, 1)  # 4 sets, direct-mapped
        # Two pcs aliasing to the same set: 4-entry direct mapped,
        # set = (pc >> 2) & 3.
        btb.lookup_update(0x0, 0x100)
        btb.lookup_update(0x10, 0x200)  # same set 0
        assert not btb.lookup_update(0x0, 0x100)  # evicted


class TestRAS:
    def test_balanced_calls_predict_correctly(self):
        ras = ReturnAddressStack(8)
        for _ in range(4):
            ras.push()
        results = [ras.pop() for _ in range(4)]
        assert all(results)

    def test_overflow_causes_mispredict(self):
        ras = ReturnAddressStack(2)
        for _ in range(3):
            ras.push()
        assert ras.pop()  # newest two are fine
        assert ras.pop()
        assert not ras.pop()  # crushed entry

    def test_underflow_mispredicts(self):
        ras = ReturnAddressStack(4)
        assert not ras.pop()

    def test_depth_tracking(self):
        ras = ReturnAddressStack(4)
        ras.push()
        ras.push()
        assert ras.depth == 2
        ras.pop()
        assert ras.depth == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
