"""Tests for lease-based distributed scheduling (ledger + end to end).

The :class:`LeaseLedger` unit tests drive expiry with an injected fake
clock, so no test here sleeps through a TTL.  The end-to-end tests
launch real ``python -m repro.engine.worker`` agent subprocesses
against an in-process engine listening on an ephemeral localhost port.
"""

import os
import subprocess
import sys
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.engine import Engine, RunRequest
from repro.engine.protocol import (
    MAX_LEASE_REQUEUES,
    LeaseLedger,
    RemoteFailure,
    parse_address,
    payload_digest,
)
from repro.scale import Scale
from repro.techniques.reference import ReferenceTechnique
from repro.techniques.truncated import RunZ
from repro.workloads.spec import get_workload

from tests.test_engine import SCALE


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.0.0.5:4242") == ("10.0.0.5", 4242)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_address("4242") == ("127.0.0.1", 4242)

    def test_whitespace_tolerated(self):
        assert parse_address(" 127.0.0.1:80 ") == ("127.0.0.1", 80)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_address("localhost:http")


class TestPayloadDigest:
    def test_insensitive_to_key_order(self):
        a = payload_digest([{"x": 1, "y": 2}])
        b = payload_digest([{"y": 2, "x": 1}])
        assert a == b

    def test_sensitive_to_values(self):
        assert payload_digest([{"x": 1}]) != payload_digest([{"x": 2}])


# -- ledger unit tests (fake clock, no sockets) ------------------------------------


@dataclass
class FakeTask:
    """The minimal task shape the ledger needs (key + no batch)."""

    key: str
    members: object = None


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, delta: float) -> None:
        self.now += delta


def make_ledger(**kwargs) -> tuple:
    clock = FakeClock()
    kwargs.setdefault("lease_ttl", 9.0)
    ledger = LeaseLedger(clock=clock, **kwargs)
    supply = deque()
    ledger.begin_batch(supply)
    return ledger, clock, supply


class TestLeaseGrant:
    def test_grant_pops_supply(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        lease, delivery = ledger.grant(agent)
        assert lease.key == "k1"
        assert delivery == 1
        assert not supply
        assert ledger.outstanding() == 1

    def test_empty_supply_is_idle(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        assert ledger.grant(agent) is None

    def test_redelivery_counts_up(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        ledger.grant(agent)
        ledger.leave(agent)
        events = ledger.collect()
        task = [e for e in events if e[0] == "requeue"][0][1]
        supply.append(task)
        agent2 = ledger.join("a2")
        _, delivery = ledger.grant(agent2)
        assert delivery == 2

    def test_join_name_collision_gets_suffix(self):
        ledger, clock, supply = make_ledger()
        first = ledger.join("twin")
        second = ledger.join("twin")
        assert first == "twin"
        assert second != "twin" and second.startswith("twin#")


class TestLeaseExpiry:
    def test_heartbeat_loss_requeues_uncharged(self):
        """Dead agent: the run is requeued without being charged."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        ledger.grant(agent)
        clock.advance(9.5)  # past the TTL with no heartbeat
        events = ledger.collect()
        kinds = [e[0] for e in events]
        assert kinds == ["requeue"]
        assert events[0][3] == "heartbeat lost"
        counters = ledger.consume_counters()
        assert counters["lease_expiries"] == 1
        assert counters["lease_requeues"] == 1
        assert counters["agents_lost"] == 1
        assert ledger.outstanding() == 0

    def test_heartbeats_keep_lease_alive(self):
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        lease, _ = ledger.grant(agent)
        for _ in range(10):
            clock.advance(3.0)  # the agent's ttl/3 cadence
            assert ledger.heartbeat(agent, lease.lease_id) == "ok"
        assert ledger.collect() == []
        assert ledger.outstanding() == 1

    def test_slow_run_with_heartbeats_is_charged_timeout(self):
        """Deadline blown while heartbeating: slow run, not dead agent."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0, run_timeout=30.0)
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        lease, _ = ledger.grant(agent)
        elapsed = 0.0
        while elapsed < 34.0:  # budget 30s + ttl/3 grace
            clock.advance(3.0)
            elapsed += 3.0
            ledger.heartbeat(agent, lease.lease_id)
        events = ledger.collect()
        assert [e[0] for e in events] == ["timeout"]
        counters = ledger.consume_counters()
        assert "lease_requeues" not in counters
        # The canceled lease survives so the agent's next heartbeat is
        # told to abandon the run instead of reading "unknown lease".
        assert ledger.heartbeat(agent, lease.lease_id) == "cancel"

    def test_batch_deadline_scales_with_members(self):
        ledger, clock, supply = make_ledger(lease_ttl=9.0, run_timeout=10.0)
        agent = ledger.join("a1")
        supply.append(FakeTask("batch", members=[object(), object()]))
        lease, _ = ledger.grant(agent)
        clock.advance(14.0)  # past a 1-member budget (10 + 3 grace)
        ledger.heartbeat(agent, lease.lease_id)
        assert ledger.collect() == []  # 2 members: budget is 23s
        clock.advance(10.0)
        ledger.heartbeat(agent, lease.lease_id)
        assert [e[0] for e in ledger.collect()] == ["timeout"]

    def test_requeue_budget_exhaustion_charges_timeout(self):
        """A run cannot ping-pong across dying agents forever."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0, max_requeues=2)
        task = FakeTask("poison")
        for round_no in range(3):
            supply.append(task)
            agent = ledger.join(f"a{round_no}")
            ledger.grant(agent)
            clock.advance(9.5)
            events = ledger.collect()
            if round_no < 2:
                assert [e[0] for e in events] == ["requeue"]
            else:
                assert [e[0] for e in events] == ["timeout"]
                assert "requeue budget" in events[0][3]

    def test_default_requeue_cap_matches_constant(self):
        ledger, clock, supply = make_ledger()
        assert ledger.max_requeues == MAX_LEASE_REQUEUES


class TestCompletionDedup:
    PAYLOADS = [{"family": "Stub", "cpi": 1.5}]

    def grant_one(self, ledger, supply, agent, key="k1"):
        supply.append(FakeTask(key))
        lease, _ = ledger.grant(agent)
        return lease

    def test_live_completion_is_ok(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        lease = self.grant_one(ledger, supply, agent)
        status = ledger.complete(
            agent, lease.lease_id, "k1", self.PAYLOADS, 0.5, {}
        )
        assert status == "ok"
        events = ledger.collect()
        assert [e[0] for e in events] == ["complete"]
        _, task, payloads, wall, reuse, from_agent = events[0]
        assert task.key == "k1" and payloads == self.PAYLOADS
        assert from_agent == agent

    def test_duplicate_completion_dedups_on_byte_parity(self):
        """At-least-once: the straggler's identical bytes are dropped."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        lease = self.grant_one(ledger, supply, slow)
        clock.advance(9.5)  # slow agent presumed dead; lease requeued
        requeue = [e for e in ledger.collect() if e[0] == "requeue"]
        supply.append(requeue[0][1])
        fast = ledger.join("fast")
        lease2, _ = ledger.grant(fast)
        assert ledger.complete(
            fast, lease2.lease_id, "k1", self.PAYLOADS, 0.4, {}
        ) == "ok"
        # The presumed-dead agent's completion arrives after all.
        assert ledger.complete(
            slow, lease.lease_id, "k1", self.PAYLOADS, 9.9, {}
        ) == "duplicate"
        events = ledger.collect()
        assert [e[0] for e in events] == ["complete"]  # exactly one
        assert ledger.consume_counters()["duplicate_completions"] == 1

    def test_duplicate_with_different_bytes_is_parity_violation(self):
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        lease = self.grant_one(ledger, supply, slow)
        clock.advance(9.5)
        requeue = [e for e in ledger.collect() if e[0] == "requeue"]
        supply.append(requeue[0][1])
        fast = ledger.join("fast")
        lease2, _ = ledger.grant(fast)
        ledger.complete(fast, lease2.lease_id, "k1", self.PAYLOADS, 0.4, {})
        ledger.collect()
        assert ledger.complete(
            slow, lease.lease_id, "k1", [{"family": "Stub", "cpi": 9.9}],
            9.9, {},
        ) == "duplicate"
        events = ledger.collect()
        assert [e[0] for e in events] == ["parity"]

    def test_stale_completion_for_pending_key_is_discarded(self):
        """The requeued task is authoritative until someone completes
        it; an expired lease's completion must not race it in."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        lease = self.grant_one(ledger, supply, slow)
        clock.advance(9.5)
        ledger.collect()  # requeued; key not completed by anyone yet
        assert ledger.complete(
            slow, lease.lease_id, "k1", self.PAYLOADS, 9.9, {}
        ) == "stale"
        assert ledger.collect() == []
        assert ledger.consume_counters()["stale_completions"] == 1

    def test_remote_failure_event(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        lease = self.grant_one(ledger, supply, agent)
        exc = RemoteFailure("transient", "RuntimeError", "boom")
        assert ledger.fail(agent, lease.lease_id, "k1", exc) == "ok"
        events = ledger.collect()
        assert [e[0] for e in events] == ["fail"]
        assert events[0][2] is exc


# -- end to end: real agents over localhost ----------------------------------------


def _requests(count=3):
    workload = get_workload("gzip", "reference", seed=7)
    techniques = [ReferenceTechnique()] + [
        RunZ(100 * (i + 1)) for i in range(count - 1)
    ]
    return [
        RunRequest(technique, workload, ARCH_CONFIGS[0])
        for technique in techniques
    ]


def _store_bytes(root: Path) -> dict:
    """Map of result-store entries to their exact bytes."""
    out = {}
    for path in sorted((root / "v1").rglob("*.json")):
        if path.name == "engine-stats.json":
            continue
        out[str(path.relative_to(root / "v1"))] = path.read_bytes()
    return out


def _spawn_agent(port, name, fault_plan=None, backend="python"):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(Path(__file__).resolve().parents[1] / "src"),
                    env.get("PYTHONPATH")) if p
    )
    env["REPRO_BACKEND"] = backend
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    return subprocess.Popen(
        [sys.executable, "-m", "repro.engine.worker",
         "--connect", f"127.0.0.1:{port}", "--name", name],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )


@pytest.fixture()
def distributed_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")

    def build(cache_name="dist", **kwargs):
        kwargs.setdefault("jobs", 0)
        kwargs.setdefault("listen", "127.0.0.1:0")
        kwargs.setdefault("lease_ttl", 3.0)
        return Engine(
            scale=SCALE, cache_dir=tmp_path / cache_name, **kwargs
        )

    return build


class TestDistributedSweep:
    def test_two_agents_one_killed_matches_single_host(
        self, tmp_path, distributed_engine
    ):
        """The acceptance anchor: a two-agent sweep with one agent
        SIGKILLed mid-run completes byte-identical to a single-host
        sweep, with nothing charged to the requeued runs."""
        reference = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path / "ref")
        try:
            reference.run_many(_requests())
        finally:
            reference.close()

        engine = distributed_engine(min_agents=2)
        agents = []
        try:
            port = engine.lease_server.port
            # dead@1: the victim SIGKILLs itself on its first lease.
            agents.append(_spawn_agent(port, "victim", fault_plan="dead@1"))
            agents.append(_spawn_agent(port, "steady"))
            results = engine.run_many(_requests())
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            for proc in agents:
                try:
                    proc.wait(timeout=15)
                finally:
                    proc.kill()

        assert all(result is not None for result in results)
        assert _store_bytes(tmp_path / "dist") == _store_bytes(
            tmp_path / "ref"
        )
        assert snapshot["failed_runs"] == []
        assert snapshot["agents_joined"] == 2
        assert snapshot["agents_lost"] >= 1
        assert snapshot["remote_runs"] == len(results)
        assert snapshot["lease_requeues"] >= 1
        # Uncharged requeue: every completion was a first attempt.
        assert snapshot["runs_launched"] == snapshot["runs_succeeded"]
        assert snapshot["per_agent"]["steady"]["runs"] == len(results)

    def test_dropped_completion_requeues_and_dedups(
        self, tmp_path, distributed_engine
    ):
        """drop@N: the agent executes, discards the completion and
        reconnects; the rerun wins and nothing is double-counted."""
        engine = distributed_engine(min_agents=1)
        agent = None
        try:
            port = engine.lease_server.port
            agent = _spawn_agent(port, "flaky", fault_plan="drop@1")
            results = engine.run_many(_requests())
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        assert all(result is not None for result in results)
        assert snapshot["failed_runs"] == []
        assert snapshot["remote_runs"] == len(results)
        assert snapshot["lease_requeues"] >= 1
        assert snapshot["agents_joined"] == 2  # the reconnect rejoined

    def test_resume_of_partially_distributed_sweep(
        self, tmp_path, distributed_engine
    ):
        """A distributed sweep's journal resumes like a local one: the
        remotely-completed runs are trusted, only the rest execute."""
        engine = distributed_engine(min_agents=1)
        agent = None
        try:
            port = engine.lease_server.port
            agent = _spawn_agent(port, "only")
            engine.run_many(_requests(2))
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        resumed = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path / "dist", resume=True
        )
        try:
            results = resumed.run_many(_requests(4))
            snapshot = resumed.metrics.snapshot()
        finally:
            resumed.close()
        assert all(result is not None for result in results)
        assert snapshot["resumed"] == 2
        assert snapshot["runs_launched"] == 2  # only the new work ran

    def test_worker_rejects_epoch_mismatch(self, tmp_path, monkeypatch):
        """An agent from a different results epoch must refuse to mix
        its results into the sweep (exit code 2)."""
        monkeypatch.setenv("REPRO_BACKEND", "python")
        engine = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path / "dist",
            listen="127.0.0.1:0",
        )
        agent = None
        try:
            port = engine.lease_server.port
            env = dict(os.environ)
            env["PYTHONPATH"] = str(
                Path(__file__).resolve().parents[1] / "src"
            )
            agent = subprocess.Popen(
                [sys.executable, "-c",
                 "import sys\n"
                 "from repro.engine import worker\n"
                 "worker.RESULTS_EPOCH = worker.RESULTS_EPOCH + 999\n"
                 "sys.exit(worker.main(['--connect', '127.0.0.1:%d']))"
                 % port],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )
            assert agent.wait(timeout=30) == 2
        finally:
            if agent is not None and agent.poll() is None:
                agent.kill()
            engine.close()
