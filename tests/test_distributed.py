"""Tests for lease-based distributed scheduling (ledger + end to end).

The :class:`LeaseLedger` unit tests drive expiry with an injected fake
clock, so no test here sleeps through a TTL.  The end-to-end tests
launch real ``python -m repro.engine.worker`` agent subprocesses
against an in-process engine listening on an ephemeral localhost port.
"""

import hashlib
import os
import shutil
import subprocess
import sys
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.engine import Engine, RunRequest
from repro.engine.planner import RESULTS_EPOCH
from repro.engine.protocol import (
    MAX_LEASE_REQUEUES,
    LeaseLedger,
    LeaseServer,
    RemoteFailure,
    parse_address,
    payload_digest,
)
from repro.scale import Scale
from repro.techniques.reference import ReferenceTechnique
from repro.techniques.truncated import RunZ
from repro.workloads.inputs import clear_trace_cache
from repro.workloads.spec import get_workload

from tests.test_engine import SCALE


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.0.0.5:4242") == ("10.0.0.5", 4242)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_address("4242") == ("127.0.0.1", 4242)

    def test_whitespace_tolerated(self):
        assert parse_address(" 127.0.0.1:80 ") == ("127.0.0.1", 80)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_address("localhost:http")


class TestPayloadDigest:
    def test_insensitive_to_key_order(self):
        a = payload_digest([{"x": 1, "y": 2}])
        b = payload_digest([{"y": 2, "x": 1}])
        assert a == b

    def test_sensitive_to_values(self):
        assert payload_digest([{"x": 1}]) != payload_digest([{"x": 2}])


# -- ledger unit tests (fake clock, no sockets) ------------------------------------


@dataclass
class FakeTask:
    """The minimal task shape the ledger needs (key + no batch)."""

    key: str
    members: object = None


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, delta: float) -> None:
        self.now += delta


def make_ledger(**kwargs) -> tuple:
    clock = FakeClock()
    kwargs.setdefault("lease_ttl", 9.0)
    ledger = LeaseLedger(clock=clock, **kwargs)
    supply = deque()
    ledger.begin_batch(supply)
    return ledger, clock, supply


class TestLeaseGrant:
    def test_grant_pops_supply(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        lease, delivery = ledger.grant(agent)
        assert lease.key == "k1"
        assert delivery == 1
        assert not supply
        assert ledger.outstanding() == 1

    def test_empty_supply_is_idle(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        assert ledger.grant(agent) is None

    def test_redelivery_counts_up(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        ledger.grant(agent)
        ledger.leave(agent)
        events = ledger.collect()
        task = [e for e in events if e[0] == "requeue"][0][1]
        supply.append(task)
        agent2 = ledger.join("a2")
        _, delivery = ledger.grant(agent2)
        assert delivery == 2

    def test_join_name_collision_gets_suffix(self):
        ledger, clock, supply = make_ledger()
        first = ledger.join("twin")
        second = ledger.join("twin")
        assert first == "twin"
        assert second != "twin" and second.startswith("twin#")


class TestLeaseExpiry:
    def test_heartbeat_loss_requeues_uncharged(self):
        """Dead agent: the run is requeued without being charged."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        ledger.grant(agent)
        clock.advance(9.5)  # past the TTL with no heartbeat
        events = ledger.collect()
        kinds = [e[0] for e in events]
        assert kinds == ["requeue"]
        assert events[0][3] == "heartbeat lost"
        counters = ledger.consume_counters()
        assert counters["lease_expiries"] == 1
        assert counters["lease_requeues"] == 1
        assert counters["agents_lost"] == 1
        assert ledger.outstanding() == 0

    def test_heartbeats_keep_lease_alive(self):
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        lease, _ = ledger.grant(agent)
        for _ in range(10):
            clock.advance(3.0)  # the agent's ttl/3 cadence
            assert ledger.heartbeat(agent, lease.lease_id) == "ok"
        assert ledger.collect() == []
        assert ledger.outstanding() == 1

    def test_slow_run_with_heartbeats_is_charged_timeout(self):
        """Deadline blown while heartbeating: slow run, not dead agent."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0, run_timeout=30.0)
        agent = ledger.join("a1")
        supply.append(FakeTask("k1"))
        lease, _ = ledger.grant(agent)
        elapsed = 0.0
        while elapsed < 34.0:  # budget 30s + ttl/3 grace
            clock.advance(3.0)
            elapsed += 3.0
            ledger.heartbeat(agent, lease.lease_id)
        events = ledger.collect()
        assert [e[0] for e in events] == ["timeout"]
        counters = ledger.consume_counters()
        assert "lease_requeues" not in counters
        # The canceled lease survives so the agent's next heartbeat is
        # told to abandon the run instead of reading "unknown lease".
        assert ledger.heartbeat(agent, lease.lease_id) == "cancel"

    def test_batch_deadline_scales_with_members(self):
        ledger, clock, supply = make_ledger(lease_ttl=9.0, run_timeout=10.0)
        agent = ledger.join("a1")
        supply.append(FakeTask("batch", members=[object(), object()]))
        lease, _ = ledger.grant(agent)
        clock.advance(14.0)  # past a 1-member budget (10 + 3 grace)
        ledger.heartbeat(agent, lease.lease_id)
        assert ledger.collect() == []  # 2 members: budget is 23s
        clock.advance(10.0)
        ledger.heartbeat(agent, lease.lease_id)
        assert [e[0] for e in ledger.collect()] == ["timeout"]

    def test_requeue_budget_exhaustion_charges_timeout(self):
        """A run cannot ping-pong across dying agents forever."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0, max_requeues=2)
        task = FakeTask("poison")
        for round_no in range(3):
            supply.append(task)
            agent = ledger.join(f"a{round_no}")
            ledger.grant(agent)
            clock.advance(9.5)
            events = ledger.collect()
            if round_no < 2:
                assert [e[0] for e in events] == ["requeue"]
            else:
                assert [e[0] for e in events] == ["timeout"]
                assert "requeue budget" in events[0][3]

    def test_default_requeue_cap_matches_constant(self):
        ledger, clock, supply = make_ledger()
        assert ledger.max_requeues == MAX_LEASE_REQUEUES


class TestCompletionDedup:
    PAYLOADS = [{"family": "Stub", "cpi": 1.5}]

    def grant_one(self, ledger, supply, agent, key="k1"):
        supply.append(FakeTask(key))
        lease, _ = ledger.grant(agent)
        return lease

    def test_live_completion_is_ok(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        lease = self.grant_one(ledger, supply, agent)
        status = ledger.complete(
            agent, lease.lease_id, "k1", self.PAYLOADS, 0.5, {}
        )
        assert status == "ok"
        events = ledger.collect()
        assert [e[0] for e in events] == ["complete"]
        _, task, payloads, wall, reuse, from_agent, resources = events[0]
        assert task.key == "k1" and payloads == self.PAYLOADS
        assert from_agent == agent
        assert resources is None

    def test_duplicate_completion_dedups_on_byte_parity(self):
        """At-least-once: the straggler's identical bytes are dropped."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        lease = self.grant_one(ledger, supply, slow)
        clock.advance(9.5)  # slow agent presumed dead; lease requeued
        requeue = [e for e in ledger.collect() if e[0] == "requeue"]
        supply.append(requeue[0][1])
        fast = ledger.join("fast")
        lease2, _ = ledger.grant(fast)
        assert ledger.complete(
            fast, lease2.lease_id, "k1", self.PAYLOADS, 0.4, {}
        ) == "ok"
        # The presumed-dead agent's completion arrives after all.
        assert ledger.complete(
            slow, lease.lease_id, "k1", self.PAYLOADS, 9.9, {}
        ) == "duplicate"
        events = ledger.collect()
        assert [e[0] for e in events] == ["complete"]  # exactly one
        assert ledger.consume_counters()["duplicate_completions"] == 1

    def test_duplicate_with_different_bytes_is_parity_violation(self):
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        lease = self.grant_one(ledger, supply, slow)
        clock.advance(9.5)
        requeue = [e for e in ledger.collect() if e[0] == "requeue"]
        supply.append(requeue[0][1])
        fast = ledger.join("fast")
        lease2, _ = ledger.grant(fast)
        ledger.complete(fast, lease2.lease_id, "k1", self.PAYLOADS, 0.4, {})
        ledger.collect()
        assert ledger.complete(
            slow, lease.lease_id, "k1", [{"family": "Stub", "cpi": 9.9}],
            9.9, {},
        ) == "duplicate"
        events = ledger.collect()
        assert [e[0] for e in events] == ["parity"]

    def test_stale_completion_for_pending_key_is_discarded(self):
        """The requeued task is authoritative until someone completes
        it; an expired lease's completion must not race it in."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        lease = self.grant_one(ledger, supply, slow)
        clock.advance(9.5)
        ledger.collect()  # requeued; key not completed by anyone yet
        assert ledger.complete(
            slow, lease.lease_id, "k1", self.PAYLOADS, 9.9, {}
        ) == "stale"
        assert ledger.collect() == []
        assert ledger.consume_counters()["stale_completions"] == 1

    def test_remote_failure_event(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        lease = self.grant_one(ledger, supply, agent)
        exc = RemoteFailure("transient", "RuntimeError", "boom")
        assert ledger.fail(agent, lease.lease_id, "k1", exc) == "ok"
        events = ledger.collect()
        assert [e[0] for e in events] == ["fail"]
        assert events[0][2] is exc


# -- batch leases (fake clock) ------------------------------------------------------


@dataclass
class FakeBatch:
    """The minimal batch-task shape the ledger needs (members + key)."""

    members: list = field(default_factory=list)

    @property
    def key(self):
        return self.members[0].key


def _batch(keys):
    return FakeBatch([FakeTask(k) for k in keys])


class TestBatchLeases:
    def test_grant_caps_and_splits_batches(self):
        """A batch wider than the remote cap grants its head slice and
        pushes the remainder back to the front of the supply; a
        one-member tail travels as the member run itself."""
        ledger, clock, supply = make_ledger(remote_batch_configs=2)
        agent = ledger.join("a1")
        supply.append(_batch(["k1", "k2", "k3", "k4", "k5"]))
        lease, _ = ledger.grant(agent)
        assert lease.member_keys == ["k1", "k2"]
        assert [m.key for m in lease.task.members] == ["k1", "k2"]
        lease2, _ = ledger.grant(agent)
        assert lease2.member_keys == ["k3", "k4"]
        lease3, _ = ledger.grant(agent)
        assert lease3.member_keys is None
        assert lease3.key == "k5"
        assert ledger.grant(agent) is None and not supply

    def test_uncapped_batch_travels_whole(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        supply.append(_batch(["k1", "k2", "k3"]))
        lease, _ = ledger.grant(agent)
        assert lease.member_keys == ["k1", "k2", "k3"]

    def test_batch_expiry_requeues_whole_batch_uncharged(self):
        """Heartbeat loss on a batch lease is one uncharged requeue
        event carrying the whole batch task."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        agent = ledger.join("a1")
        supply.append(_batch(["k1", "k2", "k3"]))
        ledger.grant(agent)
        clock.advance(9.5)
        events = ledger.collect()
        assert [e[0] for e in events] == ["requeue"]
        assert [m.key for m in events[0][1].members] == ["k1", "k2", "k3"]
        counters = ledger.consume_counters()
        assert counters["lease_requeues"] == 1
        assert "remote_batch_explodes" not in counters

    def test_batch_member_fault_reports_explode(self):
        """A member fault on a batch lease surfaces as one fail event
        (the executor explodes it) and counts a remote explode."""
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        supply.append(_batch(["k1", "k2"]))
        lease, _ = ledger.grant(agent)
        exc = RemoteFailure("transient", "InjectedFault", "member poison")
        assert ledger.fail(agent, lease.lease_id, lease.key, exc) == "ok"
        events = ledger.collect()
        assert [e[0] for e in events] == ["fail"]
        assert [m.key for m in events[0][1].members] == ["k1", "k2"]
        assert ledger.consume_counters()["remote_batch_explodes"] == 1

    def test_live_batch_completion_counts_members(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        supply.append(_batch(["k1", "k2"]))
        lease, _ = ledger.grant(agent)
        payloads = [{"cpi": 1.0}, {"cpi": 2.0}]
        status = ledger.complete(
            agent, lease.lease_id, lease.key, payloads, 0.8, {},
            keys=["k1", "k2"],
        )
        assert status == "ok"
        row = [r for r in ledger.agents_snapshot() if r["agent"] == agent][0]
        assert row["runs"] == 2

    def test_duplicate_batch_completion_dedups_per_member(self):
        """A dead batch lease's straggler resolves against per-member
        digests -- even when the rerun completed the members as
        singletons after an explode."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        supply.append(_batch(["k1", "k2"]))
        lease, _ = ledger.grant(slow)
        clock.advance(9.5)
        ledger.collect()  # batch requeued, slow presumed dead
        payloads = [{"cpi": 1.0}, {"cpi": 2.0}]
        # The requeued members complete as singletons via a live agent.
        fast = ledger.join("fast")
        for key, payload in zip(["k1", "k2"], payloads):
            supply.append(FakeTask(key))
            release, _ = ledger.grant(fast)
            ledger.complete(fast, release.lease_id, key, [payload], 0.1, {})
        ledger.collect()
        # The dead agent's whole-batch completion arrives after all.
        assert ledger.complete(
            slow, lease.lease_id, "k1", payloads, 9.9, {}, keys=["k1", "k2"]
        ) == "duplicate"
        assert ledger.collect() == []
        assert ledger.consume_counters()["duplicate_completions"] == 1

    def test_stale_batch_completion_with_unknown_member_discarded(self):
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        supply.append(_batch(["k1", "k2"]))
        lease, _ = ledger.grant(slow)
        clock.advance(9.5)
        ledger.collect()  # requeued; nobody completed the members yet
        assert ledger.complete(
            slow, lease.lease_id, "k1", [{"cpi": 1.0}, {"cpi": 2.0}],
            9.9, {}, keys=["k1", "k2"],
        ) == "stale"
        assert ledger.collect() == []
        assert ledger.consume_counters()["stale_completions"] == 1

    def test_batch_straggler_member_parity_violation(self):
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        supply.append(_batch(["k1", "k2"]))
        lease, _ = ledger.grant(slow)
        clock.advance(9.5)
        ledger.collect()
        fast = ledger.join("fast")
        supply.append(_batch(["k1", "k2"]))
        release, _ = ledger.grant(fast)
        ledger.complete(
            fast, release.lease_id, release.key,
            [{"cpi": 1.0}, {"cpi": 2.0}], 0.2, {}, keys=["k1", "k2"],
        )
        ledger.collect()
        # Same members, different bytes for k2: a parity violation.
        ledger.complete(
            slow, lease.lease_id, "k1",
            [{"cpi": 1.0}, {"cpi": 9.9}], 9.9, {}, keys=["k1", "k2"],
        )
        events = ledger.collect()
        assert [e[0] for e in events] == ["parity"]
        assert events[0][1] == "k2"

    def test_singleton_straggler_dedups_against_batch_member(self):
        """Member digests use the singleton digest formula, so a
        singleton straggler of a batch-completed run deduplicates."""
        ledger, clock, supply = make_ledger(lease_ttl=9.0)
        slow = ledger.join("slow")
        supply.append(FakeTask("k1"))
        lease, _ = ledger.grant(slow)
        clock.advance(9.5)
        ledger.collect()  # singleton requeued
        fast = ledger.join("fast")
        supply.append(_batch(["k1", "k2"]))
        release, _ = ledger.grant(fast)
        payloads = [{"cpi": 1.0}, {"cpi": 2.0}]
        ledger.complete(
            fast, release.lease_id, release.key, payloads, 0.2, {},
            keys=["k1", "k2"],
        )
        ledger.collect()
        assert ledger.complete(
            slow, lease.lease_id, "k1", [payloads[0]], 9.9, {}
        ) == "duplicate"


class TestLedgerObserve:
    def test_observe_folds_phase_artifacts_and_ledgers(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        ledger.observe(
            agent,
            phase="timing_batch",
            artifacts={"hits": 2, "misses": 1, "fetches": 1,
                       "refetches": 0, "corrupt_chunks": 0},
            phases={"timing": {"seconds": 1.5, "instructions": 100}},
            family="Reference",
        )
        row = [r for r in ledger.agents_snapshot() if r["agent"] == agent][0]
        assert row["phase"] == "timing_batch"
        assert row["artifact_hits"] == 2
        assert row["artifact_misses"] == 1
        counters = ledger.consume_counters()
        assert counters["artifact_fetches"] == 1
        assert "artifact_refetches" not in counters
        phases = ledger.consume_remote_phases()
        assert phases["Reference"]["timing"]["seconds"] == pytest.approx(1.5)
        assert phases["Reference"]["timing"]["instructions"] == 100
        assert ledger.consume_remote_phases() == {}  # drained

    def test_observe_accumulates_across_reports(self):
        ledger, clock, supply = make_ledger()
        agent = ledger.join("a1")
        for _ in range(2):
            ledger.observe(
                agent,
                artifacts={"hits": 1, "fetches": 2, "corrupt_chunks": 1},
                phases={"fast_forward": {"seconds": 0.5, "instructions": 7}},
                family="RunZ",
            )
        row = [r for r in ledger.agents_snapshot() if r["agent"] == agent][0]
        assert row["artifact_hits"] == 2
        counters = ledger.consume_counters()
        assert counters["artifact_fetches"] == 4
        assert counters["artifact_corrupt_chunks"] == 2
        phases = ledger.consume_remote_phases()
        assert phases["RunZ"]["fast_forward"]["seconds"] == pytest.approx(1.0)
        assert phases["RunZ"]["fast_forward"]["instructions"] == 14


# -- artifact wire ops (server-side, no sockets) -----------------------------------


TRACE_KEY = hashlib.sha256(b"trace").hexdigest()
STATE_KEY = hashlib.sha256(b"state").hexdigest()


@pytest.fixture()
def artifact_server(tmp_path):
    trace_root = tmp_path / "traces"
    checkpoint_root = tmp_path / "checkpoints"
    server = LeaseServer(
        "127.0.0.1", 0,
        scale_instructions_per_m=1000, results_epoch=RESULTS_EPOCH,
        artifact_roots={"trace": trace_root, "checkpoint": checkpoint_root},
    )
    try:
        yield server, trace_root, checkpoint_root
    finally:
        server.close(drain_s=0.0)


class TestArtifactWire:
    def _write_trace(self, root, key, data):
        path = root / key[:2] / f"{key}.npt"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
        return path

    def test_probe_missing_artifact(self, artifact_server):
        server, _, _ = artifact_server
        reply = server._artifact_probe(
            {"kind": "trace", "key": TRACE_KEY}
        )
        assert reply == {"op": "artifact", "found": False}

    def test_probe_and_fetch_trace_roundtrip(self, artifact_server):
        server, trace_root, _ = artifact_server
        data = bytes(range(256)) * 64
        self._write_trace(trace_root, TRACE_KEY, data)
        probe = server._artifact_probe({"kind": "trace", "key": TRACE_KEY})
        assert probe["found"] and probe["size"] == len(data)
        assert probe["sha256"] == hashlib.sha256(data).hexdigest()
        # Chunked fetch with a small window reassembles the exact bytes.
        import base64 as b64

        got, offset = b"", 0
        while True:
            reply = server._artifact_fetch(
                {"kind": "trace", "key": TRACE_KEY,
                 "offset": offset, "length": 1000}
            )
            assert reply["op"] == "chunk"
            chunk = b64.b64decode(reply["data"])
            got += chunk
            offset += len(chunk)
            if reply["eof"]:
                break
        assert got == data

    def test_unsafe_keys_rejected(self, artifact_server):
        server, trace_root, _ = artifact_server
        for key in ("../../etc/passwd", "ABCDEF", "k", ""):
            assert server._artifact_probe(
                {"kind": "trace", "key": key}
            ) == {"op": "artifact", "found": False}
            assert server._artifact_fetch(
                {"kind": "trace", "key": key, "offset": 0}
            ) == {"op": "artifact", "found": False}

    def test_unknown_kind_not_served(self, artifact_server):
        server, _, _ = artifact_server
        reply = server._artifact_probe({"kind": "journal", "key": TRACE_KEY})
        assert reply == {"op": "artifact", "found": False}

    def test_checkpoint_probe_lists_positions(self, artifact_server):
        server, _, checkpoint_root = artifact_server
        directory = checkpoint_root / STATE_KEY[:2]
        directory.mkdir(parents=True)
        for position in (500, 1000):
            (directory / f"{STATE_KEY}-{position}.json").write_text(
                '{"position": %d}' % position
            )
        probe = server._artifact_probe(
            {"kind": "checkpoint", "key": STATE_KEY}
        )
        assert probe["found"]
        assert [entry["position"] for entry in probe["files"]] == [500, 1000]
        for entry in probe["files"]:
            assert entry["size"] > 0 and len(entry["sha256"]) == 64

    def test_fetch_clamps_length(self, artifact_server):
        server, trace_root, _ = artifact_server
        self._write_trace(trace_root, TRACE_KEY, b"abcdef")
        import base64 as b64

        reply = server._artifact_fetch(
            {"kind": "trace", "key": TRACE_KEY, "offset": 2, "length": 0}
        )
        assert b64.b64decode(reply["data"]) == b"c"  # length clamped to 1
        assert not reply["eof"]


# -- end to end: real agents over localhost ----------------------------------------


def _requests(count=3):
    workload = get_workload("gzip", "reference", seed=7)
    techniques = [ReferenceTechnique()] + [
        RunZ(100 * (i + 1)) for i in range(count - 1)
    ]
    return [
        RunRequest(technique, workload, ARCH_CONFIGS[0])
        for technique in techniques
    ]


def _config_sweep(count=6):
    """Same-geometry latency variants: one batchable group of runs."""
    workload = get_workload("gzip", "reference", seed=7)
    base = ARCH_CONFIGS[0]
    configs = [base] + [
        base.replace(
            name=f"lat{i}",
            l2_latency=base.l2_latency + 1 + i,
            mem_latency_first=base.mem_latency_first + 10 * i,
        )
        for i in range(1, count)
    ]
    return [
        RunRequest(ReferenceTechnique(), workload, config)
        for config in configs
    ]


def _prime_artifacts(cache_root: Path, requests) -> None:
    """Populate a supervisor cache's trace/checkpoint stores, then wipe
    the results so a fresh sweep re-executes everything remotely --
    the artifact cache then has something to serve to cold agents.

    The in-process trace LRU is dropped first: a prior engine run in
    this process would otherwise serve the trace from memory and the
    priming run would never write it into ``cache_root/traces``."""
    clear_trace_cache()
    prime = Engine(scale=SCALE, jobs=1, cache_dir=cache_root, batch_configs=4)
    try:
        prime.run_many(requests)
    finally:
        prime.close()
    shutil.rmtree(cache_root / "v1", ignore_errors=True)
    for name in ("journal.jsonl", "journal.jsonl.1", "engine-stats.json"):
        try:
            (cache_root / name).unlink()
        except OSError:
            pass


def _store_bytes(root: Path) -> dict:
    """Map of result-store entries to their exact bytes."""
    out = {}
    for path in sorted((root / "v1").rglob("*.json")):
        if path.name == "engine-stats.json":
            continue
        out[str(path.relative_to(root / "v1"))] = path.read_bytes()
    return out


def _spawn_agent(port, name, fault_plan=None, backend="python", cache_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(Path(__file__).resolve().parents[1] / "src"),
                    env.get("PYTHONPATH")) if p
    )
    env["REPRO_BACKEND"] = backend
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    command = [sys.executable, "-m", "repro.engine.worker",
               "--connect", f"127.0.0.1:{port}", "--name", name]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    return subprocess.Popen(
        command,
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )


@pytest.fixture()
def distributed_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")

    def build(cache_name="dist", **kwargs):
        kwargs.setdefault("jobs", 0)
        kwargs.setdefault("listen", "127.0.0.1:0")
        kwargs.setdefault("lease_ttl", 3.0)
        return Engine(
            scale=SCALE, cache_dir=tmp_path / cache_name, **kwargs
        )

    return build


class TestDistributedSweep:
    def test_two_agents_one_killed_matches_single_host(
        self, tmp_path, distributed_engine
    ):
        """The acceptance anchor: a two-agent sweep with one agent
        SIGKILLed mid-run completes byte-identical to a single-host
        sweep, with nothing charged to the requeued runs."""
        reference = Engine(scale=SCALE, jobs=1, cache_dir=tmp_path / "ref")
        try:
            reference.run_many(_requests())
        finally:
            reference.close()

        engine = distributed_engine(min_agents=2)
        agents = []
        try:
            port = engine.lease_server.port
            # dead@1: the victim SIGKILLs itself on its first lease.
            agents.append(_spawn_agent(port, "victim", fault_plan="dead@1"))
            agents.append(_spawn_agent(port, "steady"))
            results = engine.run_many(_requests())
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            for proc in agents:
                try:
                    proc.wait(timeout=15)
                finally:
                    proc.kill()

        assert all(result is not None for result in results)
        assert _store_bytes(tmp_path / "dist") == _store_bytes(
            tmp_path / "ref"
        )
        assert snapshot["failed_runs"] == []
        assert snapshot["agents_joined"] == 2
        assert snapshot["agents_lost"] >= 1
        assert snapshot["remote_runs"] == len(results)
        assert snapshot["lease_requeues"] >= 1
        # Uncharged requeue: every completion was a first attempt.
        assert snapshot["runs_launched"] == snapshot["runs_succeeded"]
        assert snapshot["per_agent"]["steady"]["runs"] == len(results)

    def test_dropped_completion_requeues_and_dedups(
        self, tmp_path, distributed_engine
    ):
        """drop@N: the agent executes, discards the completion and
        reconnects; the rerun wins and nothing is double-counted."""
        engine = distributed_engine(min_agents=1)
        agent = None
        try:
            port = engine.lease_server.port
            agent = _spawn_agent(port, "flaky", fault_plan="drop@1")
            results = engine.run_many(_requests())
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        assert all(result is not None for result in results)
        assert snapshot["failed_runs"] == []
        assert snapshot["remote_runs"] == len(results)
        assert snapshot["lease_requeues"] >= 1
        assert snapshot["agents_joined"] == 2  # the reconnect rejoined

    def test_resume_of_partially_distributed_sweep(
        self, tmp_path, distributed_engine
    ):
        """A distributed sweep's journal resumes like a local one: the
        remotely-completed runs are trusted, only the rest execute."""
        engine = distributed_engine(min_agents=1)
        agent = None
        try:
            port = engine.lease_server.port
            agent = _spawn_agent(port, "only")
            engine.run_many(_requests(2))
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        resumed = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path / "dist", resume=True
        )
        try:
            results = resumed.run_many(_requests(4))
            snapshot = resumed.metrics.snapshot()
        finally:
            resumed.close()
        assert all(result is not None for result in results)
        assert snapshot["resumed"] == 2
        assert snapshot["runs_launched"] == 2  # only the new work ran

    def test_batched_sweep_fetches_artifacts_and_matches_single_host(
        self, tmp_path, distributed_engine
    ):
        """The tentpole anchor: a remote agent leases whole batches,
        fetches the missing trace through the wire-level artifact cache
        and produces a store byte-identical to single-host batching."""
        requests = _config_sweep()
        reference = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path / "ref", batch_configs=4
        )
        try:
            reference.run_many(requests)
        finally:
            reference.close()
        _prime_artifacts(tmp_path / "dist", requests)

        engine = distributed_engine(batch_configs=4, min_agents=1)
        agent = None
        try:
            port = engine.lease_server.port
            agent = _spawn_agent(port, "fetcher")
            results = engine.run_many(requests)
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        assert all(result is not None for result in results)
        assert _store_bytes(tmp_path / "dist") == _store_bytes(
            tmp_path / "ref"
        )
        assert snapshot["failed_runs"] == []
        assert snapshot["remote_runs"] == len(requests)
        # The fresh agent missed locally and fetched the shared trace
        # from the supervisor's store -- exactly once, verified clean.
        assert snapshot["artifact_fetches"] >= 1
        assert snapshot.get("artifact_refetches", 0) == 0
        assert snapshot.get("artifact_corrupt_chunks", 0) == 0
        agent_row = snapshot["per_agent"]["fetcher"]
        assert agent_row["artifact_misses"] >= 1
        assert agent_row["runs"] == len(requests)
        # Remote per-phase observations reached the attribution table.
        family = results[0].family
        assert snapshot["per_family"][family]["phases"]

    def test_remote_batch_cap_splits_leases(
        self, tmp_path, distributed_engine
    ):
        """--remote-batch-configs below --batch-configs splits one wide
        batch across several leases without changing the results."""
        requests = _config_sweep()
        reference = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path / "ref", batch_configs=1
        )
        try:
            reference.run_many(requests)
        finally:
            reference.close()

        engine = distributed_engine(
            batch_configs=6, remote_batch_configs=2, min_agents=1
        )
        agent = None
        try:
            port = engine.lease_server.port
            agent = _spawn_agent(port, "splitter")
            results = engine.run_many(requests)
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        assert all(result is not None for result in results)
        assert _store_bytes(tmp_path / "dist") == _store_bytes(
            tmp_path / "ref"
        )
        # 6 batchable configs at <=2 members per lease: >= 3 grants.
        assert snapshot["leases_granted"] >= 3
        assert snapshot["remote_runs"] == len(requests)

    def test_corrupt_artifact_chunk_detected_and_refetched(
        self, tmp_path, distributed_engine
    ):
        """corrupt@1: a flipped chunk byte fails the whole-file sha256,
        is counted, and the re-fetch comes back clean -- results and
        store bytes are unaffected."""
        requests = _config_sweep()
        _prime_artifacts(tmp_path / "dist", requests)

        engine = distributed_engine(batch_configs=4, min_agents=1)
        agent = None
        try:
            port = engine.lease_server.port
            agent = _spawn_agent(port, "noisy", fault_plan="corrupt@1")
            results = engine.run_many(requests)
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        assert all(result is not None for result in results)
        assert snapshot["failed_runs"] == []
        assert snapshot["artifact_corrupt_chunks"] >= 1
        assert snapshot["artifact_refetches"] >= 1
        assert snapshot["artifact_fetches"] >= 1

    def test_drop_mid_fetch_requeues_lease(
        self, tmp_path, distributed_engine
    ):
        """drop@1:fetch severs the connection during artifact transfer;
        the lease requeues uncharged and the reconnected agent fetches
        clean."""
        requests = _config_sweep()
        _prime_artifacts(tmp_path / "dist", requests)

        engine = distributed_engine(batch_configs=4, min_agents=1)
        agent = None
        try:
            port = engine.lease_server.port
            agent = _spawn_agent(port, "flaky", fault_plan="drop@1:fetch")
            results = engine.run_many(requests)
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        assert all(result is not None for result in results)
        assert snapshot["failed_runs"] == []
        assert snapshot["lease_requeues"] >= 1
        assert snapshot["artifact_fetches"] >= 1
        # Uncharged: every completion was a first attempt.
        assert snapshot["runs_launched"] == snapshot["runs_succeeded"]

    def test_remote_member_fault_explodes_batch(
        self, tmp_path, distributed_engine
    ):
        """A poisoned member fails its whole remote batch; the executor
        explodes it into uncharged singletons and only the poisoned run
        is charged a retry -- full PR 3 fault parity."""
        requests = _config_sweep()
        reference = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path / "ref", batch_configs=4
        )
        try:
            reference.run_many(requests)
        finally:
            reference.close()

        engine = distributed_engine(batch_configs=4, min_agents=1)
        agent = None
        try:
            port = engine.lease_server.port
            # exc@2 arms inside the agent's child for plan slot 2: the
            # batched pass raises, then the singleton rerun of slot 2
            # fails once more (charged) and succeeds on its retry.
            agent = _spawn_agent(port, "poisoned", fault_plan="exc@2")
            results = engine.run_many(requests)
            snapshot = engine.metrics.snapshot()
        finally:
            engine.close()
            if agent is not None:
                try:
                    agent.wait(timeout=15)
                finally:
                    agent.kill()

        assert all(result is not None for result in results)
        assert _store_bytes(tmp_path / "dist") == _store_bytes(
            tmp_path / "ref"
        )
        assert snapshot["failed_runs"] == []
        assert snapshot["remote_batch_explodes"] >= 1

    def test_worker_rejects_epoch_mismatch(self, tmp_path, monkeypatch):
        """An agent from a different results epoch must refuse to mix
        its results into the sweep (exit code 2)."""
        monkeypatch.setenv("REPRO_BACKEND", "python")
        engine = Engine(
            scale=SCALE, jobs=1, cache_dir=tmp_path / "dist",
            listen="127.0.0.1:0",
        )
        agent = None
        try:
            port = engine.lease_server.port
            env = dict(os.environ)
            env["PYTHONPATH"] = str(
                Path(__file__).resolve().parents[1] / "src"
            )
            agent = subprocess.Popen(
                [sys.executable, "-c",
                 "import sys\n"
                 "from repro.engine import worker\n"
                 "worker.RESULTS_EPOCH = worker.RESULTS_EPOCH + 999\n"
                 "sys.exit(worker.main(['--connect', '127.0.0.1:%d']))"
                 % port],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )
            assert agent.wait(timeout=30) == 2
        finally:
            if agent is not None and agent.poll() is None:
                agent.kill()
            engine.close()
