"""Tests for the Table 1 permutation registry."""

import pytest

from repro.techniques.registry import (
    FAMILIES,
    all_permutations,
    count_permutations,
    ff_run_z_permutations,
    ff_wu_run_z_permutations,
    permutations_for_family,
    reduced_permutations,
    run_z_permutations,
    simpoint_permutations,
    smarts_permutations,
)


class TestCounts:
    def test_table1_counts(self):
        assert len(simpoint_permutations()) == 3
        assert len(smarts_permutations()) == 9
        assert len(run_z_permutations()) == 4
        assert len(ff_run_z_permutations()) == 12
        assert len(ff_wu_run_z_permutations()) == 36

    def test_total_with_all_inputs(self):
        # gzip and vortex ship all five reduced inputs: 69 permutations.
        assert count_permutations("gzip") == 69
        assert count_permutations("vortex") == 69

    def test_total_shrinks_with_availability(self):
        assert count_permutations("art") == 66  # only test/train
        assert count_permutations("mcf") == 68

    def test_figure6_simpoint_variant(self):
        assert len(simpoint_permutations(include_single_10m=True)) == 4


class TestPermutationStructure:
    def test_ff_wu_sums_to_grid(self):
        for technique in ff_wu_run_z_permutations():
            assert technique.x_m + technique.y_m in (1000, 2000, 4000)

    def test_unique_labels_per_family(self):
        for family in FAMILIES:
            permutations = permutations_for_family(family, "gzip")
            labels = [p.permutation for p in permutations]
            assert len(set(labels)) == len(labels)

    def test_family_attribute_consistent(self):
        for family in FAMILIES:
            for technique in permutations_for_family(family, "gzip"):
                assert technique.family == family

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            permutations_for_family("montecarlo")

    def test_reduced_filtering(self):
        names = {t.input_set for t in reduced_permutations("art")}
        assert names == {"test", "train"}

    def test_all_permutations_structure(self):
        permutations = all_permutations("gzip")
        assert set(permutations) == set(FAMILIES)

    def test_smarts_grid(self):
        pairs = {
            (t.unit_instructions, t.warmup_instructions)
            for t in smarts_permutations()
        }
        assert len(pairs) == 9
        assert (1000, 2000) in pairs
