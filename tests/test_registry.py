"""Tests for the Table 1 permutation registry."""

import pytest

from repro.techniques.reference import ReferenceTechnique
from repro.techniques.registry import (
    FAMILIES,
    all_permutations,
    count_permutations,
    ff_run_z_permutations,
    ff_wu_run_z_permutations,
    permutations,
    permutations_for_family,
    reduced_permutations,
    run_z_permutations,
    simpoint_permutations,
    smarts_permutations,
)


class TestCounts:
    def test_table1_counts(self):
        assert len(permutations("SimPoint")) == 3
        assert len(permutations("SMARTS")) == 9
        assert len(permutations("Run Z")) == 4
        assert len(permutations("FF+Run Z")) == 12
        assert len(permutations("FF+WU+Run Z")) == 36

    def test_total_with_all_inputs(self):
        # gzip and vortex ship all five reduced inputs: 69 permutations.
        assert count_permutations("gzip") == 69
        assert count_permutations("vortex") == 69

    def test_total_shrinks_with_availability(self):
        assert count_permutations("art") == 66  # only test/train
        assert count_permutations("mcf") == 68

    def test_figure6_simpoint_variant(self):
        assert len(permutations("SimPoint", extras=True)) == 4


class TestPermutationStructure:
    def test_ff_wu_sums_to_grid(self):
        for technique in permutations("FF+WU+Run Z"):
            assert technique.x_m + technique.y_m in (1000, 2000, 4000)

    def test_unique_labels_per_family(self):
        for family in FAMILIES:
            techniques = permutations(family, "gzip")
            labels = [p.permutation for p in techniques]
            assert len(set(labels)) == len(labels)

    def test_family_attribute_consistent(self):
        for family in FAMILIES:
            for technique in permutations(family, "gzip"):
                assert technique.family == family

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            permutations("montecarlo")

    def test_reference_family(self):
        techniques = permutations("Reference")
        assert len(techniques) == 1
        assert isinstance(techniques[0], ReferenceTechnique)

    def test_reduced_filtering(self):
        names = {t.input_set for t in permutations("Reduced", "art")}
        assert names == {"test", "train"}

    def test_all_permutations_structure(self):
        grouped = all_permutations("gzip")
        assert set(grouped) == set(FAMILIES)

    def test_smarts_grid(self):
        pairs = {
            (t.unit_instructions, t.warmup_instructions)
            for t in permutations("SMARTS")
        }
        assert len(pairs) == 9
        assert (1000, 2000) in pairs


class TestDeprecatedAliases:
    """The six pre-redesign functions still answer, with a warning."""

    def test_aliases_match_canonical(self):
        aliases = {
            "SimPoint": simpoint_permutations,
            "SMARTS": smarts_permutations,
            "Reduced": reduced_permutations,
            "Run Z": run_z_permutations,
            "FF+Run Z": ff_run_z_permutations,
            "FF+WU+Run Z": ff_wu_run_z_permutations,
        }
        for family, alias in aliases.items():
            with pytest.warns(DeprecationWarning):
                old = alias()
            new = permutations(family)
            assert [t.permutation for t in old] == [t.permutation for t in new]

    def test_simpoint_alias_extras(self):
        with pytest.warns(DeprecationWarning):
            assert len(simpoint_permutations(include_single_10m=True)) == 4

    def test_permutations_for_family_is_quiet(self):
        # Still part of the public API, not deprecated.
        assert len(permutations_for_family("SMARTS")) == 9
