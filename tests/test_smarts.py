"""Tests for SMARTS sampling and its statistics."""

import pytest

from repro.cpu.config import ARCH_CONFIGS
from repro.scale import PROFILES, Scale
from repro.techniques.reference import ReferenceTechnique
from repro.techniques.smarts import (
    SmartsTechnique,
    estimate_cpi,
    required_samples,
)

from tests.conftest import TEST_SCALE, make_micro_workload

CONFIG = ARCH_CONFIGS[0]


@pytest.fixture(scope="module")
def workload():
    return make_micro_workload(length_m=800, seed=33)


class TestStatistics:
    def test_estimate_mean(self):
        estimate = estimate_cpi([1.0, 2.0, 3.0])
        assert estimate.mean == pytest.approx(2.0)
        assert estimate.n == 3

    def test_zero_variance(self):
        estimate = estimate_cpi([2.0] * 10)
        assert estimate.std == 0.0
        assert estimate.relative_halfwidth == 0.0
        assert estimate.satisfies(0.03)

    def test_single_sample_unbounded(self):
        estimate = estimate_cpi([2.0])
        assert estimate.halfwidth == float("inf")
        assert not estimate.satisfies(0.03)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_cpi([])

    def test_halfwidth_shrinks_with_n(self):
        import math
        samples_small = [1.0, 3.0] * 5
        samples_large = [1.0, 3.0] * 50
        small = estimate_cpi(samples_small)
        large = estimate_cpi(samples_large)
        assert large.halfwidth < small.halfwidth

    def test_required_samples_grows_with_cv(self):
        low_var = estimate_cpi([1.0, 1.1] * 10)
        high_var = estimate_cpi([0.5, 2.5] * 10)
        assert required_samples(high_var) > required_samples(low_var)

    def test_required_samples_zero_variance(self):
        estimate = estimate_cpi([2.0] * 5)
        assert required_samples(estimate) == 5

    def test_confidence_increases_requirement(self):
        samples = [1.0, 2.0] * 20
        loose = required_samples(estimate_cpi(samples, confidence=0.9))
        tight = required_samples(estimate_cpi(samples, confidence=0.997))
        assert tight > loose


class TestScaleAdaptation:
    def test_full_scale_literal(self):
        technique = SmartsTechnique(1000, 2000)
        u, w = technique.effective_unit(Scale(PROFILES["full"]))
        assert (u, w) == (1000, 2000)

    def test_tiny_scale_shrinks(self):
        technique = SmartsTechnique(1000, 2000)
        u, w = technique.effective_unit(Scale(25))
        assert u == 50 and w == 100

    def test_minimum_unit(self):
        technique = SmartsTechnique(100, 200)
        u, _ = technique.effective_unit(Scale(25))
        assert u >= 10

    def test_sample_plan_capped_by_trace(self):
        technique = SmartsTechnique(10000, 20000)
        n = technique.plan_samples(trace_length=10_000, scale=Scale(500))
        assert n * (30000) >= 10_000 or n >= 1
        assert n <= 10_000 // (30000 + 1) or n == 1

    def test_explicit_initial_samples(self):
        technique = SmartsTechnique(100, 200, initial_samples=7)
        n = technique.plan_samples(trace_length=100_000, scale=Scale(500))
        assert n == 7


class TestSmartsRun:
    def test_close_to_reference(self, workload):
        reference = ReferenceTechnique().run(workload, CONFIG, TEST_SCALE)
        result = SmartsTechnique(10000, 20000).run(workload, CONFIG, TEST_SCALE)
        assert result.cpi == pytest.approx(reference.cpi, rel=0.15)

    def test_work_profile(self, workload):
        result = SmartsTechnique(1000, 2000).run(workload, CONFIG, TEST_SCALE)
        trace_length = len(workload.trace(TEST_SCALE))
        assert 0 < result.detailed_instructions < trace_length
        assert result.functional_warm_instructions > 0
        assert result.runs >= 1

    def test_regions_disjoint_and_ordered(self, workload):
        result = SmartsTechnique(1000, 2000).run(workload, CONFIG, TEST_SCALE)
        previous_end = 0
        for start, end in result.regions:
            assert start >= previous_end
            assert end > start
            previous_end = end

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SmartsTechnique(0, 100)
        with pytest.raises(ValueError):
            SmartsTechnique(100, -1)
        with pytest.raises(ValueError):
            SmartsTechnique(100, 200, confidence=1.5)

    def test_permutation_label(self):
        assert SmartsTechnique(1000, 2000).permutation == "U=1000, W=2000"
