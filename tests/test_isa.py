"""Tests for op classes, templates and the Trace container."""

import numpy as np
import pytest

from repro.isa.instructions import (
    BRANCH_CLASSES,
    FU_CLASS,
    MEM_CLASSES,
    NUM_REGS,
    InstructionTemplate,
    OpClass,
    make_template,
)
from repro.isa.trace import (
    FLAG_COND_BRANCH,
    FLAG_TAKEN,
    Trace,
    TraceBuilder,
    iterate_flags,
)


class TestInstructionTemplate:
    def test_defaults(self):
        t = InstructionTemplate(OpClass.IALU)
        assert t.dst == -1 and t.src1 == -1 and t.src2 == -1

    def test_memory_classification(self):
        assert InstructionTemplate(OpClass.LOAD).is_memory
        assert InstructionTemplate(OpClass.STORE).is_memory
        assert not InstructionTemplate(OpClass.IALU).is_memory

    def test_branch_classification(self):
        for opclass in BRANCH_CLASSES:
            assert InstructionTemplate(opclass).is_branch
        assert not InstructionTemplate(OpClass.FPALU).is_branch

    def test_register_range_enforced(self):
        with pytest.raises(ValueError):
            InstructionTemplate(OpClass.IALU, dst=NUM_REGS)
        with pytest.raises(ValueError):
            InstructionTemplate(OpClass.IALU, src1=-2)

    def test_trivial_probability_range(self):
        with pytest.raises(ValueError):
            InstructionTemplate(OpClass.IMULT, trivial_probability=1.5)

    def test_make_template_none_mapping(self):
        t = make_template(OpClass.LOAD, dst=3)
        assert t.dst == 3 and t.src1 == -1

    def test_every_opclass_has_fu(self):
        for opclass in OpClass:
            assert opclass in FU_CLASS

    def test_mem_and_branch_disjoint(self):
        assert not (MEM_CLASSES & BRANCH_CLASSES)


def _tiny_trace(n=10, blocks=3):
    op = np.zeros(n, dtype=np.uint8)
    dst = np.full(n, -1, dtype=np.int16)
    src = np.full(n, -1, dtype=np.int16)
    pc = (np.arange(n, dtype=np.int64) * 4) + 0x400000
    block = (np.arange(n, dtype=np.int32) * blocks) // n
    addr = np.zeros(n, dtype=np.int64)
    flags = np.zeros(n, dtype=np.uint8)
    target = np.zeros(n, dtype=np.int64)
    return Trace(op, dst, src.copy(), src.copy(), pc, block, addr, flags, target)


class TestTrace:
    def test_length(self):
        assert len(_tiny_trace(10)) == 10

    def test_column_mismatch_rejected(self):
        trace = _tiny_trace(10)
        with pytest.raises(ValueError):
            Trace(
                trace.op,
                trace.dst[:5],
                trace.src1,
                trace.src2,
                trace.pc,
                trace.block,
                trace.addr,
                trace.flags,
                trace.target,
            )

    def test_num_blocks_inferred(self):
        assert _tiny_trace(9, blocks=3).num_blocks == 3

    def test_column_lists_full_cached(self):
        trace = _tiny_trace(6)
        a = trace.column_lists()
        b = trace.column_lists()
        assert a is b  # cached
        assert len(a) == 9 and len(a[0]) == 6

    def test_column_lists_slice(self):
        trace = _tiny_trace(10)
        cols = trace.column_lists(2, 5)
        assert len(cols[0]) == 3
        assert cols[4][0] == trace.pc[2]

    def test_column_lists_slice_served_from_full_cache(self):
        # Arbitrary region slices come from one cached full conversion
        # rather than re-running ndarray.tolist per chunk.
        trace = _tiny_trace(10)
        full = trace.column_lists()
        sliced = trace.column_lists(3, 8)
        for col_full, col_slice in zip(full, sliced):
            assert col_slice == col_full[3:8]
        # Slicing before any full conversion is also correct.
        cold = _tiny_trace(10)
        assert cold.column_lists(3, 8) == sliced

    def test_block_execution_counts(self):
        trace = _tiny_trace(9, blocks=3)
        counts = trace.block_execution_counts()
        assert counts.tolist() == [3, 3, 3]
        assert counts.sum() == len(trace)

    def test_block_execution_counts_range(self):
        trace = _tiny_trace(9, blocks=3)
        assert trace.block_execution_counts(0, 3).tolist() == [3, 0, 0]

    def test_block_entry_counts(self):
        trace = _tiny_trace(9, blocks=3)
        entries = trace.block_entry_counts()
        assert entries.tolist() == [1, 1, 1]

    def test_block_entry_counts_empty_region(self):
        trace = _tiny_trace(9, blocks=3)
        assert trace.block_entry_counts(4, 4).sum() == 0

    def test_interval_bbvs_shape(self):
        trace = _tiny_trace(10, blocks=2)
        bbvs = trace.interval_bbvs(4)
        assert bbvs.shape == (3, 2)  # 4 + 4 + 2
        assert bbvs.sum() == len(trace)

    def test_interval_bbvs_invalid(self):
        with pytest.raises(ValueError):
            _tiny_trace(4).interval_bbvs(0)


class TestTraceBuilder:
    def test_empty_build(self):
        trace = TraceBuilder().build(num_blocks=4)
        assert len(trace) == 0
        assert trace.num_blocks == 4

    def test_concatenation(self):
        t1 = _tiny_trace(4)
        builder = TraceBuilder()
        for _ in range(2):
            builder.append(
                t1.op, t1.dst, t1.src1, t1.src2, t1.pc,
                t1.block, t1.addr, t1.flags, t1.target,
            )
        assert len(builder) == 8
        built = builder.build(num_blocks=t1.num_blocks)
        assert len(built) == 8
        assert built.pc[4] == t1.pc[0]


class TestFlags:
    def test_iterate_flags(self):
        names = set(iterate_flags(FLAG_COND_BRANCH | FLAG_TAKEN))
        assert names == {"cond_branch", "taken"}

    def test_no_flags(self):
        assert list(iterate_flags(0)) == []
