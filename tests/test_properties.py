"""Property-based tests (hypothesis) on core data structures and math."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.config_dependence import ConfigDependenceResult, error_trends
from repro.analysis.decision import recommend
from repro.characterization.plackett_burman import PlackettBurmanDesign
from repro.characterization.profile import compare_profiles
from repro.cpu.branch import ReturnAddressStack
from repro.cpu.cache import Cache, MainMemory
from repro.techniques.simpoint.kmeans import kmeans
from repro.util.rng import stream_seed
from repro.util.vectors import (
    euclidean_distance,
    manhattan_distance,
    rank_vector,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestVectorProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=32))
    def test_rank_vector_is_permutation(self, values):
        ranks = rank_vector(values)
        assert sorted(ranks) == list(range(1, len(values) + 1))

    @given(st.lists(finite_floats, min_size=1, max_size=32))
    def test_rank_one_is_max_magnitude(self, values):
        ranks = rank_vector(values)
        top = ranks.index(1)
        assert abs(values[top]) == max(abs(v) for v in values)

    @given(
        st.lists(finite_floats, min_size=1, max_size=16),
        st.lists(finite_floats, min_size=1, max_size=16),
        st.lists(finite_floats, min_size=1, max_size=16),
    )
    def test_triangle_inequality(self, a, b, c):
        n = min(len(a), len(b), len(c))
        a, b, c = a[:n], b[:n], c[:n]
        assert euclidean_distance(a, c) <= (
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-6
        )

    @given(st.lists(finite_floats, min_size=1, max_size=16))
    def test_distance_to_self_zero(self, a):
        assert euclidean_distance(a, a) == 0.0
        assert manhattan_distance(a, a) == 0.0

    @given(
        st.lists(finite_floats, min_size=2, max_size=16),
        st.lists(finite_floats, min_size=2, max_size=16),
    )
    def test_l1_dominates_l2(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert manhattan_distance(a, b) >= euclidean_distance(a, b) - 1e-9


class TestRngProperties:
    @given(st.integers(0, 2**31), st.text(max_size=20), st.text(max_size=20))
    def test_seed_in_range(self, root, a, b):
        seed = stream_seed(root, a, b)
        assert 0 <= seed < 2**63

    @given(st.integers(0, 2**31), st.text(max_size=10))
    def test_seed_deterministic(self, root, name):
        assert stream_seed(root, name) == stream_seed(root, name)


class TestCacheProperties:
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = Cache("c", 512, 2, 32, 1, memory=MainMemory(100, 5, 8))
        for addr in addresses:
            cache.access(addr)
        for ways in cache.sets:
            assert len(ways) <= cache.assoc

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = Cache("c", 1024, 4, 32, 1, memory=MainMemory(100, 5, 8))
        for addr in addresses:
            cache.access(addr)
        assert cache.hits + cache.misses == len(addresses)

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_repeat_access_always_hits(self, addresses):
        cache = Cache("c", 1024, 4, 32, 1, memory=MainMemory(100, 5, 8))
        for addr in addresses:
            cache.access(addr)
            assert cache.access(addr) == cache.hit_latency

    @given(st.lists(st.integers(0, 1 << 18), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_warm_and_access_reach_same_residency(self, addresses):
        memory = MainMemory(100, 5, 8)
        a = Cache("a", 512, 2, 32, 1, memory=memory)
        b = Cache("b", 512, 2, 32, 1, memory=memory)
        for addr in addresses:
            a.access(addr)
            b.warm(addr)
        for addr in addresses[-20:]:
            assert a.contains(addr) == b.contains(addr)


class TestRasProperties:
    @given(st.lists(st.booleans(), max_size=200), st.integers(1, 32))
    def test_depth_bounded(self, operations, entries):
        ras = ReturnAddressStack(entries)
        for is_push in operations:
            if is_push:
                ras.push()
            else:
                ras.pop()
            assert 0 <= ras.depth <= entries

    @given(st.integers(1, 32), st.integers(1, 64))
    def test_balanced_within_capacity_never_mispredicts(self, entries, depth):
        ras = ReturnAddressStack(entries)
        effective = min(depth, entries)
        for _ in range(effective):
            ras.push()
        assert all(ras.pop() for _ in range(effective))


class TestPBProperties:
    @given(st.lists(finite_floats, min_size=44, max_size=44))
    @settings(max_examples=30, deadline=None)
    def test_constant_shift_does_not_change_effects(self, responses):
        design = PlackettBurmanDesign()
        base = design.effects(responses)
        shifted = design.effects([r + 100.0 for r in responses])
        assert np.allclose(base, shifted, atol=1e-6)

    @given(st.floats(min_value=0.1, max_value=10, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_scaling_scales_effects(self, factor):
        design = PlackettBurmanDesign()
        rng = np.random.default_rng(0)
        responses = rng.random(44)
        base = design.effects(responses)
        scaled = design.effects(responses * factor)
        assert np.allclose(scaled, base * factor, atol=1e-9)


class TestProfileProperties:
    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=30)
    )
    @settings(max_examples=50)
    def test_self_comparison_always_similar(self, profile):
        comparison = compare_profiles(profile, profile)
        assert comparison.statistic == pytest.approx(0.0, abs=1e-6)
        assert comparison.similar

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=30),
        st.floats(min_value=0.01, max_value=100),
    )
    @settings(max_examples=50)
    def test_scale_invariance(self, profile, factor):
        scaled = [p * factor for p in profile]
        comparison = compare_profiles(scaled, profile)
        assert comparison.statistic == pytest.approx(0.0, abs=1e-6)


class TestKMeansProperties:
    @given(st.integers(1, 5), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_inertia_nonincreasing_in_k(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((30, 3))
        small = kmeans(points, 1, seeds=2, max_iterations=20, seed=seed)
        bigger = kmeans(points, k, seeds=2, max_iterations=20, seed=seed)
        assert bigger.inertia <= small.inertia + 1e-9


class TestAnalysisProperties:
    @given(st.lists(st.floats(min_value=-0.99, max_value=5.0), min_size=1, max_size=60))
    def test_histogram_is_distribution(self, errors):
        record = ConfigDependenceResult("f", "p", errors)
        histogram = record.histogram
        assert sum(histogram) == pytest.approx(1.0)
        assert all(0 <= share <= 1 for share in histogram)

    @given(st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=1, max_size=40))
    def test_all_positive_errors_trend(self, errors):
        assert error_trends(errors)

    @given(
        st.lists(
            st.sampled_from(
                ["accuracy", "speed_vs_accuracy", "configuration_independence",
                 "complexity_to_use", "cost_to_generate"]
            ),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    def test_recommend_returns_all_six(self, priorities):
        ranking = recommend(priorities)
        assert len(ranking) == 6
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)
