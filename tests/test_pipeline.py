"""Tests for the detailed timing model."""

import pytest

from repro.cpu.config import NLP, TC, ProcessorConfig
from repro.cpu.machine import Machine
from repro.cpu.pipeline import run_detailed
from repro.cpu.simulator import Simulator

from tests.conftest import TEST_SCALE, make_micro_workload


@pytest.fixture(scope="module")
def trace():
    return make_micro_workload(length_m=600).trace(TEST_SCALE)


def cpi(trace, config=None, enhancements=None, start=0, end=None):
    simulator = Simulator(config or ProcessorConfig(), enhancements)
    end = end if end is not None else len(trace)
    return simulator.run_region(trace, start, end).stats.cpi


class TestBasicProperties:
    def test_cycles_positive(self, trace):
        stats = Simulator().run_reference(trace).stats
        assert stats.cycles > 0
        assert stats.instructions == len(trace)

    def test_cpi_at_least_width_bound(self, trace):
        config = ProcessorConfig(
            fetch_width=4, decode_width=4, issue_width=4, commit_width=4
        )
        assert cpi(trace, config) >= 1 / 4

    def test_deterministic(self, trace):
        assert cpi(trace) == cpi(trace)

    def test_region_bounds_checked(self, trace):
        machine = Machine(ProcessorConfig())
        with pytest.raises(ValueError):
            run_detailed(machine, trace, 0, len(trace) + 1)
        with pytest.raises(ValueError):
            run_detailed(machine, trace, 10, 20, measure_from=5)

    def test_stats_cover_measured_region_only(self, trace):
        machine = Machine(ProcessorConfig())
        stats = run_detailed(machine, trace, 0, 500, measure_from=300)
        assert stats.instructions == 200

    def test_counts_consistent(self, trace):
        stats = Simulator().run_reference(trace).stats
        assert stats.mispredictions <= stats.branches
        assert stats.dl1_misses <= stats.dl1_accesses
        assert stats.l2_misses <= stats.l2_accesses
        assert stats.loads + stats.stores == stats.dl1_accesses


class TestParameterSensitivity:
    """Monotone responses to first-order parameters."""

    def test_memory_latency_increases_cpi(self, trace):
        slow = cpi(trace, ProcessorConfig(mem_latency_first=400))
        fast = cpi(trace, ProcessorConfig(mem_latency_first=50))
        assert slow > fast

    def test_bigger_rob_helps(self, trace):
        small = cpi(trace, ProcessorConfig(rob_entries=16, lsq_entries=8))
        big = cpi(trace, ProcessorConfig(rob_entries=256, lsq_entries=128))
        assert big < small

    def test_narrow_width_hurts(self, trace):
        narrow = cpi(trace, ProcessorConfig(
            fetch_width=1, decode_width=1, issue_width=1, commit_width=1))
        wide = cpi(trace, ProcessorConfig(
            fetch_width=8, decode_width=8, issue_width=8, commit_width=8))
        assert narrow > wide
        assert narrow >= 1.0  # cannot beat 1 IPC at width 1

    def test_mispredict_penalty(self, trace):
        cheap = cpi(trace, ProcessorConfig(mispredict_penalty=2))
        dear = cpi(trace, ProcessorConfig(mispredict_penalty=20))
        assert dear > cheap

    def test_fewer_alus_hurt(self, trace):
        one = cpi(trace, ProcessorConfig(int_alus=1))
        four = cpi(trace, ProcessorConfig(int_alus=4))
        assert one > four

    def test_mem_ports(self, trace):
        one = cpi(trace, ProcessorConfig(mem_ports=1))
        four = cpi(trace, ProcessorConfig(mem_ports=4))
        assert one > four

    def test_perfect_predictor_fastest(self, trace):
        perfect = cpi(trace, ProcessorConfig(branch_predictor="perfect"))
        combined = cpi(trace, ProcessorConfig(branch_predictor="combined"))
        taken = cpi(trace, ProcessorConfig(branch_predictor="taken"))
        assert perfect <= combined <= taken

    def test_int_div_latency(self, trace):
        fast = cpi(trace, ProcessorConfig(int_div_lat=5))
        slow = cpi(trace, ProcessorConfig(int_div_lat=60))
        assert slow > fast


class TestEnhancementsInModel:
    def test_tc_never_hurts(self, trace):
        base = cpi(trace)
        enhanced = cpi(trace, enhancements=TC)
        assert enhanced <= base

    def test_tc_counts_simplifications(self, trace):
        stats = Simulator(ProcessorConfig(), TC).run_reference(trace).stats
        assert stats.trivial_simplified > 0

    def test_baseline_counts_nothing(self, trace):
        stats = Simulator().run_reference(trace).stats
        assert stats.trivial_simplified == 0

    def test_nlp_prefetches(self, trace):
        stats = Simulator(ProcessorConfig(), NLP).run_reference(trace).stats
        assert stats.prefetches > 0

    def test_nlp_helps_this_workload(self, trace):
        base = cpi(trace)
        enhanced = cpi(trace, enhancements=NLP)
        assert enhanced < base


class TestWarmupSemantics:
    def test_warmup_changes_measured_stats(self, trace):
        simulator = Simulator()
        cold = simulator.run_region(trace, 1000, 2000).stats
        warm = simulator.run_region(trace, 1000, 2000, warmup_instructions=1000).stats
        # Warm-up fills caches/predictors: measured CPI drops.
        assert warm.cpi < cold.cpi

    def test_work_profile_reported(self, trace):
        simulator = Simulator()
        result = simulator.run_region(trace, 1000, 2000, warmup_instructions=500)
        assert result.detailed_instructions == 1000
        assert result.extra_detailed_instructions == 500
        assert result.fastforwarded_instructions == 500
