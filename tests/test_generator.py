"""Tests for vectorized trace generation."""

import numpy as np
import pytest

from repro.isa.instructions import OpClass
from repro.isa.trace import (
    FLAG_ANY_BRANCH,
    FLAG_CALL,
    FLAG_COND_BRANCH,
    FLAG_RETURN,
    FLAG_TAKEN,
    FLAG_TRIVIAL,
)
from repro.workloads.generator import generate_trace

from tests.conftest import make_micro_program


@pytest.fixture(scope="module")
def program():
    return make_micro_program()


@pytest.fixture(scope="module")
def trace(program):
    return generate_trace(program, [(0, 1500), (1, 1500)], seed=5)


class TestGeneration:
    def test_exact_length(self, trace):
        assert len(trace) == 3000

    def test_deterministic(self, program):
        a = generate_trace(program, [(0, 500)], seed=9)
        b = generate_trace(program, [(0, 500)], seed=9)
        assert np.array_equal(a.op, b.op)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.flags, b.flags)

    def test_seed_changes_stream(self, program):
        a = generate_trace(program, [(0, 500)], seed=1)
        b = generate_trace(program, [(0, 500)], seed=2)
        assert not np.array_equal(a.addr, b.addr)

    def test_empty_schedule_rejected(self, program):
        with pytest.raises(ValueError):
            generate_trace(program, [], seed=1)
        with pytest.raises(ValueError):
            generate_trace(program, [(0, 0)], seed=1)

    def test_block_ids_valid(self, trace, program):
        assert trace.block.min() >= 0
        assert trace.block.max() < program.num_blocks

    def test_pc_matches_program_layout(self, trace, program):
        # Every pc must be one of the program's static pcs, consistent
        # with its block id.
        for i in (0, 100, 1777):
            block = trace.block[i]
            offset = program.block_offsets[block]
            n = program.block_lens[block]
            pcs = program.flat_pc[offset : offset + n]
            assert trace.pc[i] in pcs


class TestBranchSemantics:
    def test_branch_flags_only_at_block_ends(self, trace, program):
        branch_positions = np.nonzero(trace.flags & FLAG_ANY_BRANCH)[0]
        for pos in branch_positions[:200]:
            block = trace.block[pos]
            offset = program.block_offsets[block]
            n = program.block_lens[block]
            last_pc = program.flat_pc[offset + n - 1]
            assert trace.pc[pos] == last_pc

    def test_taken_iff_next_is_not_fallthrough(self, trace, program):
        cond = np.nonzero(trace.flags & FLAG_COND_BRANCH)[0]
        cond = cond[cond < len(trace) - 1]
        for pos in cond[:300]:
            block = trace.block[pos]
            next_block = trace.block[pos + 1]
            taken = bool(trace.flags[pos] & FLAG_TAKEN)
            fallthrough = program.block_fallthrough[block]
            assert taken == (next_block != fallthrough)

    def test_taken_branches_have_targets(self, trace, program):
        taken = (trace.flags & FLAG_TAKEN) != 0
        has_branch = (trace.flags & FLAG_ANY_BRANCH) != 0
        positions = np.nonzero(taken & has_branch)[0]
        positions = positions[positions < len(trace) - 1]
        for pos in positions[:300]:
            expected = program.block_pc_base[trace.block[pos + 1]]
            assert trace.target[pos] == expected

    def test_calls_and_returns_balance_roughly(self, trace):
        calls = int(((trace.flags & FLAG_CALL) != 0).sum())
        returns = int(((trace.flags & FLAG_RETURN) != 0).sum())
        assert abs(calls - returns) <= 2  # trace may end mid-pair

    def test_terminator_opclasses_rewritten(self, trace):
        cond = (trace.flags & FLAG_COND_BRANCH) != 0
        assert (trace.op[cond] == int(OpClass.BRANCH)).all()
        calls = (trace.flags & FLAG_CALL) != 0
        assert (trace.op[calls] == int(OpClass.CALL)).all()


class TestMemorySemantics:
    def test_non_memory_has_zero_addr(self, trace):
        mem = (trace.op == int(OpClass.LOAD)) | (trace.op == int(OpClass.STORE))
        assert (trace.addr[~mem] == 0).all()

    def test_memory_has_addresses(self, trace):
        mem = (trace.op == int(OpClass.LOAD)) | (trace.op == int(OpClass.STORE))
        assert mem.any()
        assert (trace.addr[mem] != 0).all()

    def test_addresses_word_aligned(self, trace):
        assert (trace.addr & 3 == 0).all()

    def test_footprint_scale_shrinks_span(self, program):
        big = generate_trace(program, [(0, 2000)], seed=3, footprint_scale=1.0)
        small = generate_trace(program, [(0, 2000)], seed=3, footprint_scale=0.01)

        def span(trace):
            mem = trace.addr != 0
            # Per-region span: use the second stream's region only.
            region = trace.addr[mem & (trace.addr >= 0x2000_0000)]
            if len(region) == 0:
                return 0
            return int(region.max() - region.min())

        assert span(small) < span(big)

    def test_phase_footprint_scale_applies(self, program):
        alpha = generate_trace(program, [(0, 2000)], seed=3)
        beta = generate_trace(program, [(1, 2000)], seed=3)
        # Phase beta scales footprints by 2.0 for the same streams.
        def span(trace):
            region = trace.addr[(trace.addr >= 0x2000_0000)]
            return int(region.max() - region.min()) if len(region) else 0
        assert span(beta) > span(alpha)


class TestTrivialFlags:
    def test_trivial_only_on_candidates(self, trace, program):
        trivial = np.nonzero(trace.flags & FLAG_TRIVIAL)[0]
        assert len(trivial) > 0  # probability 0.5 on a common template
        for pos in trivial[:200]:
            assert trace.op[pos] == int(OpClass.IMULT)

    def test_trivial_rate_plausible(self, trace):
        imult = trace.op == int(OpClass.IMULT)
        trivial = (trace.flags & FLAG_TRIVIAL) != 0
        rate = trivial[imult].mean()
        assert 0.3 < rate < 0.7  # configured probability is 0.5
