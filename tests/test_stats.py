"""Tests for weighted statistics combination (SimPoint/SMARTS math)."""

import pytest

from repro.cpu.stats import SimulationStats, combine_weighted


def make_stats(instructions, cycles, branches=0, mispredictions=0):
    stats = SimulationStats()
    stats.instructions = instructions
    stats.cycles = cycles
    stats.branches = branches
    stats.mispredictions = mispredictions
    return stats


class TestCombineWeighted:
    def test_uniform_weights_average_cpi(self):
        parts = [make_stats(100, 100), make_stats(100, 300)]
        combined = combine_weighted(parts, [1.0, 1.0])
        assert combined.cpi == pytest.approx(2.0)

    def test_weights_bias_result(self):
        parts = [make_stats(100, 100), make_stats(100, 300)]
        combined = combine_weighted(parts, [0.9, 0.1])
        assert combined.cpi == pytest.approx(0.9 * 1.0 + 0.1 * 3.0)

    def test_single_part_identity(self):
        part = make_stats(500, 1250, branches=50, mispredictions=5)
        combined = combine_weighted([part], [1.0])
        assert combined.cpi == pytest.approx(part.cpi)
        assert combined.branch_accuracy == pytest.approx(part.branch_accuracy)

    def test_rates_are_weighted_averages(self):
        a = make_stats(100, 100, branches=10, mispredictions=0)
        b = make_stats(100, 100, branches=10, mispredictions=10)
        combined = combine_weighted([a, b], [0.5, 0.5])
        assert combined.branch_accuracy == pytest.approx(0.5)

    def test_different_part_lengths(self):
        # CPI combines as a weighted average of per-part CPIs even when
        # the parts have different lengths (SimPoint semantics).
        a = make_stats(100, 200)  # CPI 2
        b = make_stats(400, 400)  # CPI 1
        combined = combine_weighted([a, b], [0.5, 0.5])
        assert combined.cpi == pytest.approx(1.5, rel=0.01)

    def test_empty(self):
        assert combine_weighted([], []).instructions == 0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            combine_weighted([make_stats(1, 1)], [1.0, 2.0])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            combine_weighted([make_stats(1, 1)], [0.0])
